"""The lattice: spec validity, measured certificates, refinement."""

import numpy as np
import pytest

from repro.approx import (
    INTERP_METHODS,
    LatticeSpec,
    SpectrumLattice,
    peak_rel_error,
    plan_exact_fn,
)

_E_KEV = np.linspace(0.3, 1.5, 24)
_K_B_KEV = 8.617333262e-8


def _synthetic_exact(temperature_k: float) -> np.ndarray:
    """A cheap spectrum-shaped function, smooth in ln T."""
    kt = _K_B_KEV * temperature_k
    return np.exp(-_E_KEV / kt) / np.sqrt(kt)


def _spec(**kw) -> LatticeSpec:
    base = dict(t_min_k=1.0e6, t_max_k=5.0e7, n_nodes=9, method="linear")
    base.update(kw)
    return LatticeSpec(**base)


class TestLatticeSpec:
    def test_bad_domain(self):
        with pytest.raises(ValueError, match="t_min_k < t_max_k"):
            LatticeSpec(t_min_k=2.0, t_max_k=1.0)

    def test_bad_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            _spec(method="spline")

    def test_bad_safety(self):
        with pytest.raises(ValueError, match="safety"):
            _spec(safety=0.5)

    def test_density_guard_rejects_coarse_lattices(self):
        # The midpoint certificate is only sound below ~1 e-fold per
        # interval; the spec enforces 0.75 as a validity envelope.
        with pytest.raises(ValueError, match="too coarse"):
            LatticeSpec(t_min_k=5.0e5, t_max_k=1.0e8, n_nodes=5)

    def test_density_guard_accepts_dense_lattices(self):
        LatticeSpec(t_min_k=5.0e5, t_max_k=1.0e8, n_nodes=17)


class TestBuild:
    def test_build_evaluates_nodes_and_midpoints(self):
        lat = SpectrumLattice(_spec(), _synthetic_exact)
        assert lat.n_nodes == 9
        assert lat.n_intervals == 8
        # n nodes + (n-1) midpoint certificates.
        assert lat.node_evals == 2 * 9 - 1

    def test_locate(self):
        lat = SpectrumLattice(_spec(), _synthetic_exact)
        assert lat.locate(5.0e5) is None
        assert lat.locate(1.0e8) is None
        assert lat.locate(-1.0) is None
        assert lat.locate(1.0e6) == 0
        assert lat.locate(5.0e7) == lat.n_intervals - 1
        i = lat.locate(7.0e6)
        temps = lat.node_temperatures_k
        assert temps[i] <= 7.0e6 <= temps[i + 1]

    def test_error_bound_outside_domain_raises(self):
        lat = SpectrumLattice(_spec(), _synthetic_exact)
        with pytest.raises(ValueError, match="outside the lattice domain"):
            lat.error_bound(1.0e9)

    def test_fingerprint_is_stored(self):
        lat = SpectrumLattice(_spec(), _synthetic_exact, fingerprint="abc")
        assert lat.fingerprint == "abc"


class TestCertificates:
    @pytest.mark.parametrize("method", INTERP_METHODS)
    def test_held_out_errors_within_certificates(self, method):
        lat = SpectrumLattice(_spec(method=method), _synthetic_exact)
        rng = np.random.default_rng(17)
        temps = np.exp(rng.uniform(np.log(1.0e6), np.log(5.0e7), size=40))
        for t in temps:
            t = float(t)
            exact = _synthetic_exact(t)
            approx = lat.interpolate(t)
            i = lat.locate(t)
            assert peak_rel_error(approx, exact) <= lat.certified_error(i)
            assert np.all(np.abs(approx - exact) <= lat.error_bound(t))

    def test_max_certified_error_is_the_loosest_interval(self):
        lat = SpectrumLattice(_spec(), _synthetic_exact)
        certs = [lat.certified_error(i) for i in range(lat.n_intervals)]
        assert lat.max_certified_error() == max(certs)


class TestRefinement:
    @pytest.mark.parametrize("method", INTERP_METHODS)
    def test_refine_promotes_midpoint_and_tightens(self, method):
        lat = SpectrumLattice(_spec(method=method), _synthetic_exact)
        worst = max(range(lat.n_intervals), key=lat.certified_error)
        before = lat.certified_error(worst)
        evals_before = lat.node_evals
        lat.refine(worst)
        assert lat.n_nodes == 10
        assert lat.n_intervals == 9
        # The midpoint spectrum was already stored: only the two child
        # certificates cost exact evaluations.
        assert lat.node_evals == evals_before + 2
        children = max(lat.certified_error(worst), lat.certified_error(worst + 1))
        assert children < before

    def test_refine_at_domain_edges(self):
        lat = SpectrumLattice(_spec(method="cubic"), _synthetic_exact)
        lat.refine(0)
        lat.refine(lat.n_intervals - 1)
        assert lat.n_intervals == 10

    def test_refine_respects_max_nodes(self):
        lat = SpectrumLattice(_spec(n_nodes=9, max_nodes=9), _synthetic_exact)
        with pytest.raises(ValueError, match="max_nodes"):
            lat.refine(0)

    def test_refined_certificates_still_hold(self):
        lat = SpectrumLattice(_spec(method="cubic"), _synthetic_exact)
        for _ in range(4):
            lat.refine(max(range(lat.n_intervals), key=lat.certified_error))
        rng = np.random.default_rng(5)
        for t in np.exp(rng.uniform(np.log(1.0e6), np.log(5.0e7), size=20)):
            t = float(t)
            err = peak_rel_error(lat.interpolate(t), _synthetic_exact(t))
            assert err <= lat.certified_error(lat.locate(t))


class TestPlanBackedBudget:
    """The satellite property sweep: held-out error <= declared budget.

    Lattice nodes come through the shared plan cache (one compilation
    per (method, tail_tol) combination); temperatures never seen by the
    lattice are then served and re-verified against the same exact path.
    """

    @pytest.mark.parametrize("tail_tol", [0.0, 1.0e-3])
    @pytest.mark.parametrize("method", INTERP_METHODS)
    def test_held_out_within_declared_budget(self, method, tail_tol):
        from repro.bench.workloads import small_real_database, small_real_grid

        budget = 1.0e-3
        db = small_real_database()
        grid = small_real_grid(n_bins=60)
        exact_fn = plan_exact_fn(db, grid, tail_tol=tail_tol)
        lat = SpectrumLattice(
            LatticeSpec(2.0e6, 2.0e7, n_nodes=9, method=method), exact_fn
        )
        rng = np.random.default_rng(42)
        temps = np.exp(rng.uniform(np.log(2.0e6), np.log(2.0e7), size=5))
        for t in temps:
            t = float(t)
            i = lat.locate(t)
            refined = 0
            while lat.certified_error(i) > budget and refined < 6:
                lat.refine(i)
                i = lat.locate(t)
                refined += 1
            assert lat.certified_error(i) <= budget
            err = peak_rel_error(lat.interpolate(t), exact_fn(t))
            assert err <= budget
