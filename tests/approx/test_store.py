"""The lattice store: serve outcomes, budget, invalidation, accounting."""

import numpy as np
import pytest

from repro.approx import LatticeSpec, LatticeStore, RequestEvaluator
from repro.service.requests import SpectrumRequest

_E_KEV = np.linspace(0.3, 1.5, 24)
_K_B_KEV = 8.617333262e-8


class _StubEvaluator:
    """Duck-typed evaluator: synthetic spectra, controllable fingerprint."""

    def __init__(self) -> None:
        self.fp = "fp-a"

    def fingerprint(self, request) -> str:
        return f"{self.fp}|{request.family_key[:8]}"

    def exact_fn(self, request):
        def exact(temperature_k: float) -> np.ndarray:
            kt = _K_B_KEV * temperature_k
            return np.exp(-_E_KEV / kt) / np.sqrt(kt)

        return exact


def _request(temperature_k=5.0e6, accuracy=1.0e-2, **kw) -> SpectrumRequest:
    return SpectrumRequest(
        temperature_k=temperature_k, accuracy=accuracy, **kw
    )


def _store(**kw) -> LatticeStore:
    args = dict(
        evaluator=_StubEvaluator(),
        spec=LatticeSpec(1.0e6, 5.0e7, n_nodes=9, method="cubic"),
    )
    args.update(kw)
    return LatticeStore(**args)


class TestServeOutcomes:
    def test_hit_within_budget(self):
        store = _store()
        result = store.serve(_request())
        assert result.served and result.status == "hit"
        assert result.values is not None
        assert 0.0 <= result.error_bound <= 1.0e-2
        assert result.abs_bound is not None
        assert store.stats.hits == 1
        assert store.stats.builds == 1
        assert store.stats.hit_ratio() == 1.0

    def test_second_serve_reuses_the_family_lattice(self):
        store = _store()
        store.serve(_request(temperature_k=5.0e6))
        evals = store.stats.node_evals
        store.serve(_request(temperature_k=6.0e6))
        assert store.stats.builds == 1
        assert store.stats.node_evals == evals  # no new exact work

    def test_out_of_domain_is_a_miss(self):
        store = _store()
        result = store.serve(_request(temperature_k=1.0e9))
        assert result.status == "miss"
        assert result.values is None
        assert store.stats.misses == 1

    def test_uncertifiable_budget_is_a_fallback(self):
        store = _store(refine_max=0)
        result = store.serve(_request(accuracy=1.0e-15))
        assert result.status == "fallback"
        assert not result.served
        assert result.error_bound > 1.0e-15
        assert store.stats.fallbacks == 1

    def test_refinement_is_booked_and_capped(self):
        store = _store(refine_max=3)
        result = store.serve(_request(accuracy=1.0e-15))
        assert result.status == "fallback"
        assert result.refinements == 3
        assert store.stats.refinements == 3
        # Two exact evaluations per bisection, on top of the build.
        lat = store.lattice(_request().family_key)
        assert store.stats.node_evals == lat.node_evals

    def test_refinement_can_turn_fallback_into_hit(self):
        store = _store(refine_max=6)
        loose = store.serve(_request(accuracy=1.0e-2))
        tight = store.serve(_request(accuracy=loose.error_bound / 4.0))
        assert tight.status == "hit"
        assert store.stats.refinements >= 1


class TestLifecycle:
    def test_fingerprint_change_invalidates_and_rebuilds(self):
        evaluator = _StubEvaluator()
        store = _store(evaluator=evaluator)
        store.serve(_request())
        assert store.stats.builds == 1
        evaluator.fp = "fp-b"  # database/grid changed under the family
        result = store.serve(_request())
        assert result.served
        assert store.stats.invalidations == 1
        assert store.stats.builds == 2

    def test_explicit_invalidate(self):
        store = _store()
        store.serve(_request())
        assert store.invalidate() == 1
        assert len(store) == 0
        assert store.stats.invalidations == 1

    def test_byte_budget_evicts_lru_family_never_current(self):
        store = _store(max_bytes=1)
        store.serve(_request(n_bins=64))
        assert len(store) == 1  # over budget, but the only family stays
        store.serve(_request(n_bins=32))  # different family
        assert len(store) == 1
        assert store.stats.evictions == 1
        # The survivor is the family just served.
        assert store.lattice(_request(n_bins=32).family_key) is not None

    def test_as_dict_shape(self):
        store = _store()
        store.serve(_request())
        out = store.as_dict()
        assert out["families"] == 1
        assert out["nodes"] == store.n_nodes
        assert out["bytes_stored"] == store.bytes_stored
        assert out["hits"] == 1


class TestRequestEvaluator:
    def test_fingerprint_ignores_temperature_and_accuracy(self):
        from repro.atomic.database import AtomicConfig, AtomicDatabase

        ev = RequestEvaluator(AtomicDatabase(AtomicConfig.tiny()))
        a = ev.fingerprint(_request(temperature_k=1.0e6, accuracy=1.0e-2))
        b = ev.fingerprint(_request(temperature_k=3.0e7, accuracy=1.0e-4))
        assert a == b

    def test_fingerprint_tracks_the_grid(self):
        from repro.atomic.database import AtomicConfig, AtomicDatabase

        ev = RequestEvaluator(AtomicDatabase(AtomicConfig.tiny()))
        a = ev.fingerprint(_request(n_bins=64))
        b = ev.fingerprint(_request(n_bins=32))
        assert a != b

    def test_exact_fn_matches_service_payload(self):
        from repro.atomic.database import AtomicConfig, AtomicDatabase
        from repro.service.requests import request_spectrum

        db = AtomicDatabase(AtomicConfig.tiny())
        ev = RequestEvaluator(db)
        req = _request(n_bins=32, z_max=db.config.z_max)
        probe = ev.exact_fn(req)(2.0e6)
        import dataclasses

        exact = request_spectrum(
            (
                dataclasses.replace(req, temperature_k=2.0e6, accuracy=0.0),
                db.config.n_max,
                db.config.z_max,
            )
        )
        np.testing.assert_array_equal(probe, exact)
