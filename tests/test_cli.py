"""The experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["quickstart", "--gpus", "2"],
            ["fig3", "--points", "4"],
            ["fig4", "--gpus", "1", "--maxlens", "2", "4"],
            ["table2"],
            ["autotune", "--gpus", "2"],
            ["spectrum", "--components", "rrc", "lines"],
            ["fig5", "--gpus", "1"],
            ["table1", "--ks", "7", "9"],
            ["nei-solve", "--element", "6"],
            ["fit", "--bins", "40"],
            ["spectrum", "--bins", "20", "--json"],
            ["serve", "--pattern", "zipf", "--requests", "50", "--seed", "7"],
            ["serve", "--pattern", "uniform", "--workers", "3", "--json"],
            ["serve", "--trace", "out.json", "--metrics", "out.prom"],
            ["spectrum", "--trace", "out.json", "--metrics", "out.prom"],
            ["submit", "--trace", "out.json", "--metrics", "out.prom"],
            ["submit", "--temperature", "2e7", "--repeat", "3"],
            ["submit", "--lane", "survey", "--rule", "romberg"],
            ["serve", "--profile", "--flamegraph", "out.collapsed"],
            ["serve", "--slo", "--slo-p95", "1.5"],
            ["spectrum", "--profile"],
            ["spectrum", "--fused", "--backend", "process", "--jobs", "2",
             "--shards", "4"],
            ["serve", "--backend", "thread", "--jobs", "2"],
            ["bench", "--quick", "--seed", "3"],
            ["bench", "--compare", "old.json", "new.json"],
            ["bench", "--cases", "nei", "--flamegraph", "fg.txt"],
            ["serve", "--dash", "dash.html", "--tsdb-out", "tsdb.json"],
            ["serve", "--dash", "d.html", "--scrape-cadence", "0.25"],
            ["spectrum", "--dash", "dash.html"],
            ["submit", "--tsdb-out", "tsdb.json"],
            ["bench", "--quick", "--dash", "dash.html"],
            ["query", "rate(repro_requests_total[2s])", "--tsdb", "t.json"],
            ["query", "depth", "--tsdb", "t.json", "--at", "3.5", "--json"],
            ["serve", "--scheduler", "predictive", "--tail", "0.3"],
            ["serve", "--scheduler", "predictive", "--cost-model", "cm.json"],
            ["submit", "--scheduler", "predictive", "--cost-model", "cm.json"],
        ],
    )
    def test_all_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_spectrum_rejects_bad_component(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spectrum", "--components", "magic"])

    def test_serve_rejects_bad_pattern(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--pattern", "flat"])

    def test_spectrum_rejects_bad_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spectrum", "--backend", "mpi"])

    def test_submit_rejects_bad_lane(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--lane", "batch"])


@pytest.mark.slow
class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--gpus", "1", "--maxlen", "4"]) == 0
        out = capsys.readouterr().out
        assert "serial APEC" in out
        assert "speedup" in out

    def test_autotune_runs(self, capsys):
        assert main(["autotune", "--gpus", "2", "--tasks-per-point", "20"]) == 0
        out = capsys.readouterr().out
        assert "chosen" in out

    def test_nei_solve_runs(self, capsys):
        assert main(["nei-solve", "--element", "6"]) == 0
        out = capsys.readouterr().out
        assert "ion fractions" in out

    def test_fit_runs(self, capsys):
        assert main(["fit", "--bins", "40"]) == 0
        out = capsys.readouterr().out
        assert "fitted temperature" in out

    def test_spectrum_runs(self, capsys):
        assert main(["spectrum", "--bins", "20"]) == 0
        out = capsys.readouterr().out
        assert "wavelength" in out

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "NEI" in out

    def test_spectrum_json_runs(self, capsys):
        import json

        assert main(["spectrum", "--bins", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["flux"]) == 12
        assert payload["components"] == ["rrc"]

    def test_spectrum_fused_backend_matches_serial(self, capsys):
        import json

        argv = ["spectrum", "--bins", "12", "--tail-tol", "1e-9", "--json"]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        fused = argv + ["--fused", "--backend", "thread", "--jobs", "2"]
        assert main(fused) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["flux"] == pytest.approx(serial["flux"], rel=1e-12)

    def test_spectrum_metrics_include_plan_cache(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        assert main([
            "spectrum", "--bins", "12", "--tail-tol", "1e-9", "--fused",
            "--metrics", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert "repro_plan_cache_lookups_total" in text
        assert "repro_plan_compilations_total" in text

    def test_serve_runs(self, capsys):
        assert main(["serve", "--requests", "40", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "requests lost" in out
        assert "cache hit ratio" in out

    def test_serve_json_reports_zero_lost(self, capsys):
        import json

        assert main(["serve", "--requests", "40", "--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["lost"] == 0
        assert payload["completions"] == 40

    def test_serve_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro.obs import parse_exposition, validate_chrome_trace

        trace = tmp_path / "out.json"
        prom = tmp_path / "out.prom"
        assert main([
            "serve", "--requests", "30", "--seed", "7",
            "--trace", str(trace), "--metrics", str(prom),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert validate_chrome_trace(doc) == []
        families = parse_exposition(prom.read_text())
        assert "repro_requests_total" in families
        assert "repro_cache_hit_ratio" in families

    def test_submit_second_call_cached(self, capsys):
        import json

        assert main(["submit", "--temperature", "1.3e7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cached = [s["cached"] for s in payload["submissions"]]
        assert cached == [False, True]

    def test_serve_profile_and_flamegraph(self, tmp_path, capsys):
        fg = tmp_path / "serve.collapsed"
        assert main([
            "serve", "--requests", "30", "--seed", "7",
            "--profile", "--flamegraph", str(fg),
        ]) == 0
        out = capsys.readouterr().out
        assert "category path" in out
        assert "critical path" in out
        lines = fg.read_text().splitlines()
        assert lines and all(int(l.rsplit(" ", 1)[1]) > 0 for l in lines)

    def test_serve_slo_report(self, capsys):
        assert main([
            "serve", "--requests", "40", "--seed", "7",
            "--slo", "--slo-depth", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue-depth" in out
        assert "interactive-p95" in out

    def test_serve_dash_and_tsdb_out(self, tmp_path, capsys):
        import json

        from repro.obs import TimeSeriesStore

        dash = tmp_path / "dash.html"
        tsdb = tmp_path / "tsdb.json"
        assert main([
            "serve", "--requests", "40", "--seed", "7", "--burst", "4",
            "--slo", "--dash", str(dash), "--tsdb-out", str(tsdb),
        ]) == 0
        html = dash.read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html
        store = TimeSeriesStore.from_dict(json.loads(tsdb.read_text()))
        assert store.n_scrapes > 1
        assert any(s.key[0] == "repro_requests_total" for s in store.series())

    def test_serve_dash_is_deterministic(self, tmp_path):
        argv = ["serve", "--requests", "30", "--seed", "7"]
        a, b = tmp_path / "a.html", tmp_path / "b.html"
        assert main(argv + ["--dash", str(a)]) == 0
        assert main(argv + ["--dash", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_serve_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(SystemExit, match="scrape-cadence"):
            main([
                "serve", "--requests", "10",
                "--dash", str(tmp_path / "d.html"), "--scrape-cadence", "0",
            ])

    def test_query_roundtrip(self, tmp_path, capsys):
        import json

        tsdb = tmp_path / "tsdb.json"
        assert main([
            "serve", "--requests", "40", "--seed", "7",
            "--tsdb-out", str(tsdb),
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "rate(repro_requests_total[2s])", "--tsdb", str(tsdb),
        ]) == 0
        out = capsys.readouterr().out
        assert "lane=" in out
        assert main([
            "query", "histogram_quantile(0.95, repro_request_latency_seconds_bucket)",
            "--tsdb", str(tsdb), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"]
        assert all(s["value"] >= 0.0 for s in payload["samples"])

    def test_query_bad_expression_fails(self, tmp_path, capsys):
        import json

        tsdb = tmp_path / "tsdb.json"
        assert main([
            "serve", "--requests", "10", "--seed", "7",
            "--tsdb-out", str(tsdb),
        ]) == 0
        capsys.readouterr()
        assert main(["query", "rate(nope", "--tsdb", str(tsdb)]) == 2
        assert "query error" in capsys.readouterr().err

    def test_spectrum_dash_smoke(self, tmp_path, capsys):
        dash = tmp_path / "spec.html"
        assert main(["spectrum", "--bins", "20", "--dash", str(dash)]) == 0
        assert "<svg" in dash.read_text()

    def test_submit_dash_smoke(self, tmp_path, capsys):
        dash = tmp_path / "submit.html"
        assert main([
            "submit", "--temperature", "1.3e7", "--dash", str(dash),
        ]) == 0
        assert "<svg" in dash.read_text()

    def test_bench_quick_writes_valid_doc(self, tmp_path, capsys):
        import json

        from repro.bench.harness import validate_bench

        out_path = tmp_path / "BENCH_PERF.json"
        assert main([
            "bench", "--quick", "--cases", "nei", "pruned_kernels",
            "--out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert validate_bench(doc) == []
        assert set(doc["cases"]) == {"nei", "pruned_kernels"}
        assert "repro bench" in capsys.readouterr().out

    def test_bench_compare_gates_regression(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "a.json"
        assert main([
            "bench", "--quick", "--cases", "nei", "--out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        doc["cases"]["nei"]["sim"]["makespan_s"] *= 1.10
        worse = tmp_path / "b.json"
        worse.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(["bench", "--compare", str(out_path), str(worse)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["bench", "--compare", str(out_path), str(out_path)]) == 0

    def test_bench_baseline_pass_and_fail(self, tmp_path, capsys):
        import json

        base = tmp_path / "base.json"
        assert main([
            "bench", "--quick", "--cases", "nei", "--out", str(base),
        ]) == 0
        out_path = tmp_path / "new.json"
        # Identical rerun vs itself: deterministic sim fields -> passes.
        assert main([
            "bench", "--quick", "--cases", "nei",
            "--out", str(out_path), "--baseline", str(base),
        ]) == 0
        doc = json.loads(base.read_text())
        doc["cases"]["nei"]["sim"]["speedup_vs_mpi"] *= 2.0  # unreachable bar
        harder = tmp_path / "harder.json"
        harder.write_text(json.dumps(doc))
        assert main([
            "bench", "--quick", "--cases", "nei",
            "--out", str(out_path), "--baseline", str(harder),
        ]) == 1
