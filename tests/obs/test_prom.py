"""Prometheus registry: rendering, parsing, ledger derivations."""

import math

import pytest

from repro.obs import MetricsRegistry, parse_exposition, run_registry, service_registry


class TestRegistry:
    def test_counter_renders_with_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "things", ("kind",))
        c.inc(2, kind="a")
        c.inc(kind="b")
        text = reg.render()
        assert "# TYPE x_total counter" in text
        assert 'x_total{kind="a"} 2' in text
        assert 'x_total{kind="b"} 1' in text

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x_total", "h")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "h")
        g.set(3)
        g.set(5)
        assert "depth 5" in reg.render()

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        fams = parse_exposition(reg.render())
        buckets = {lbl["le"]: v for lbl, v in fams["lat_bucket"]}
        assert buckets == {"1": 1.0, "2": 2.0, "+Inf": 3.0}
        assert fams["lat_count"][0][1] == 3.0
        assert fams["lat_sum"][0][1] == pytest.approx(11.0)

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("x", "h")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", "h")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().gauge("bad name", "h")

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x_total", "h", ("lane",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(kind="a")


class TestEscaping:
    ADVERSARIAL = (
        'plain',
        'quote:"inside"',
        "back\\slash",
        "new\nline",
        'all\\of"them\ntogether',
        "trailing\\",
        "comma,and}brace{",
    )

    def test_adversarial_label_values_round_trip(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "h", ("k",))
        for i, value in enumerate(self.ADVERSARIAL):
            c.inc(i + 1, k=value)
        fams = parse_exposition(reg.render())
        recovered = {lbl["k"]: v for lbl, v in fams["x_total"]}
        assert recovered == {
            value: float(i + 1) for i, value in enumerate(self.ADVERSARIAL)
        }

    def test_rendered_form_is_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", "h", ("k",)).set(1, k='a"b\\c\nd')
        line = [l for l in reg.render().splitlines() if l.startswith("g{")][0]
        assert line == 'g{k="a\\"b\\\\c\\nd"} 1'
        assert "\n" not in line  # literal newline would corrupt the format

    def test_unknown_escape_passes_through(self):
        fams = parse_exposition('x{k="a\\tb"} 1\n')
        assert fams["x"][0][0]["k"] == "a\\tb"


class TestQuantile:
    def test_linear_interpolation_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        # q=0.5 -> target rank 2 of 4: second observation falls in the
        # (1, 2] bucket; cum before it is 1, so fraction = 1/2.
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.0) == pytest.approx(0.0)
        # q=1.0 inside the last finite bucket.
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_overflow_clamps_to_last_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0  # +Inf bucket reports the last bound

    def test_labelled_series_and_empty(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", ("lane",), buckets=(1.0, 2.0))
        h.observe(0.5, lane="a")
        assert h.quantile(0.5, lane="a") == pytest.approx(0.5)
        assert h.quantile(0.5, lane="b") == 0.0  # never observed

    def test_invalid_q_rejected(self):
        h = MetricsRegistry().histogram("lat", "h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_lane_stats_quantile_matches_percentile(self):
        from repro.service.telemetry import LaneStats

        stats = LaneStats()
        for v in (0.1, 0.2, 0.4, 0.8, 1.6):
            stats.record_latency(v)
        assert stats.latency_quantile(0.95) == pytest.approx(
            stats.latency_percentile(95.0)
        )
        with pytest.raises(ValueError):
            stats.latency_quantile(95.0)


class TestAccessors:
    def test_counter_and_gauge_value(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "h", ("k",))
        c.inc(3, k="a")
        assert c.value(k="a") == 3.0
        assert c.value(k="never") == 0.0
        g = reg.gauge("g", "h")
        g.set(2.5)
        assert g.value() == 2.5

    def test_registry_get_and_value(self):
        reg = MetricsRegistry()
        reg.gauge("g", "h").set(7)
        assert reg.value("g") == 7.0
        assert "g" in reg
        with pytest.raises(KeyError, match="registered"):
            reg.get("missing")


class TestParser:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "h", ("k",)).inc(3, k="v")
        reg.gauge("b", "h").set(1.5)
        fams = parse_exposition(reg.render())
        assert fams["a_total"] == [({"k": "v"}, 3.0)]
        assert fams["b"] == [({}, 1.5)]

    def test_inf_parses(self):
        fams = parse_exposition('x_bucket{le="+Inf"} 4\n')
        assert fams["x_bucket"][0][1] == 4.0 or math.isinf(fams["x_bucket"][0][1])

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("this is not a metric line\n")

    def test_malformed_label_raises(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_exposition("x{bad} 1\n")

    def test_empty_family_registered_by_type_line(self):
        fams = parse_exposition("# TYPE quiet counter\n")
        assert fams["quiet"] == []


class TestDerivations:
    def test_run_registry_from_hybrid_result(self):
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner

        tasks = build_tasks(WorkloadSpec(n_points=2))
        result = HybridRunner(HybridConfig(n_gpus=1, max_queue_length=4)).run(tasks)
        fams = parse_exposition(run_registry(result, wall_s=0.5).render())
        total = sum(v for _lbl, v in fams["repro_tasks_total"])
        assert total == len(tasks)
        assert fams["repro_makespan_seconds"][0][1] == pytest.approx(
            result.makespan_s
        )
        assert "repro_device_load_residency_seconds" in fams
        assert fams["repro_wall_seconds"][0][1] == 0.5

    def test_service_registry_from_broker(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(TrafficSpec(n_requests=16, seed=3, n_distinct=4))
        broker, tickets = run_trace(trace, ServiceConfig(n_service_workers=1))
        fams = parse_exposition(service_registry(broker).render())
        requests = sum(v for _lbl, v in fams["repro_requests_total"])
        assert requests >= 16
        assert "repro_request_latency_seconds_bucket" in fams
        assert "repro_cache_hit_ratio" in fams
        assert "repro_device_load_residency_seconds" in fams
        assert "repro_evals_saved_total" in fams
        # Latency histogram count equals completed (non-cached latencies
        # include cache hits at 0 s, which also land in the histogram).
        count = sum(v for _lbl, v in fams["repro_request_latency_seconds_count"])
        completed = sum(1 for t in tickets if t is not None and t.done)
        assert count == completed

    def test_sched_families_zeroed_without_predictive(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(TrafficSpec(n_requests=8, seed=3, n_distinct=4))
        broker, _ = run_trace(trace, ServiceConfig(n_service_workers=1))
        rendered = service_registry(broker).render()
        fams = parse_exposition(rendered)
        # Stable schema: scheduler families exist (at zero) even on the
        # depth scheduler, where nothing is ever stolen or predicted.
        for family in (
            "repro_sched_steals_total",
            "repro_sched_donations_total",
        ):
            assert sum(v for _lbl, v in fams[family]) == 0
        assert "repro_sched_load_imbalance" in fams
        # The empty prediction-error histogram still declares itself.
        assert "repro_sched_prediction_error" in rendered

    def test_sched_families_book_predictive_run(self):
        from dataclasses import replace

        from repro.service.broker import ServiceConfig, _default_hybrid, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(
            TrafficSpec(
                n_requests=24,
                seed=7,
                mean_interarrival_s=0.02,
                burst=6,
                pattern="uniform",
                n_distinct=8,
                tail=0.35,
                tail_z_max=14,
            )
        )
        hybrid = replace(_default_hybrid(), scheduler_kind="predictive")
        broker, _ = run_trace(
            trace, ServiceConfig(n_service_workers=2, hybrid=hybrid)
        )
        fams = parse_exposition(service_registry(broker).render())
        steals = sum(v for _lbl, v in fams["repro_sched_steals_total"])
        donations = sum(v for _lbl, v in fams["repro_sched_donations_total"])
        assert steals == donations == broker.telemetry.total_steals
        errors = sum(
            v for _lbl, v in fams["repro_sched_prediction_error_count"]
        )
        assert errors == len(broker.telemetry.sched_prediction_errors)
        assert errors > 0
        assert "repro_sched_mean_device_load" in fams

    def test_run_registry_sched_families_from_predictive_result(self):
        import numpy as np

        from repro.core.calibration import CostModel
        from repro.core.hybrid import HybridConfig, HybridRunner
        from repro.core.task import Task, TaskKind
        from repro.gpusim.kernel import KernelSpec

        tasks = []
        for tid in range(24):
            heavy = tid % 5 == 0
            n_levels = 120 if heavy else 4
            label = f"pt{tid % 6}/Ion+{tid % 3}"
            arr = np.full(8, float(tid) + 0.5)
            kern = KernelSpec.for_ion_task(
                n_levels=n_levels,
                n_bins=200,
                evals_per_integral=65,
                label=label,
                efficiency=0.1 if heavy else 1.0,
                execute=(lambda a=arr: a),
            )
            tasks.append(
                Task(
                    task_id=tid,
                    kind=TaskKind.ION,
                    kernel=kern,
                    point_index=tid % 6,
                    n_levels=n_levels,
                    cpu_execute=(lambda a=arr: a),
                    label=label,
                    method="simpson",
                )
            )
        host = CostModel(
            point_overhead_s=0.0,
            prep_fixed_s=1.0e-4,
            prep_per_level_s=1.0e-6,
            submit_overhead_s=1.0e-4,
        )
        result = HybridRunner(
            HybridConfig(
                n_workers=6,
                n_gpus=2,
                max_queue_length=8,
                cost=host,
                stagger_s=0.001,
                scheduler_kind="predictive",
            )
        ).run(tasks)
        fams = parse_exposition(run_registry(result, wall_s=0.1).render())
        steals = sum(v for _lbl, v in fams["repro_sched_steals_total"])
        assert steals == result.metrics.total_steals
        errors = sum(
            v for _lbl, v in fams["repro_sched_prediction_error_count"]
        )
        assert errors == len(result.metrics.prediction_errors())
        assert fams["repro_sched_load_imbalance"][0][1] == pytest.approx(
            result.metrics.load_imbalance()
        )

    def test_batch_families_zeroed_without_batching(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(TrafficSpec(n_requests=8, seed=3, n_distinct=4))
        broker, _ = run_trace(trace, ServiceConfig(n_service_workers=1))
        fams = parse_exposition(service_registry(broker).render())
        # Stable schema: the batch families exist (at zero) even when
        # continuous batching never engaged.
        for family in (
            "repro_batch_groups_total",
            "repro_batch_temperatures_total",
            "repro_batch_coalesced_requests_total",
            "repro_batch_window_waits_total",
        ):
            assert sum(v for _lbl, v in fams[family]) == 0
        assert "repro_batch_width" in service_registry(broker).render()

    def test_batch_families_book_megabatch_dispatch(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(
            TrafficSpec(
                n_requests=24,
                seed=13,
                n_distinct=8,
                burst=6,
                mean_interarrival_s=0.02,
                pattern="uniform",
            )
        )
        broker, _ = run_trace(
            trace,
            ServiceConfig(
                n_service_workers=2,
                batch_max=8,
                batch_width_max=8,
                batch_window_s=0.02,
            ),
        )
        fams = parse_exposition(service_registry(broker).render())
        tel = broker.telemetry
        groups = sum(v for _lbl, v in fams["repro_batch_groups_total"])
        temps = sum(v for _lbl, v in fams["repro_batch_temperatures_total"])
        assert groups == len(tel.megabatch_widths) > 0
        assert temps == tel.batched_temperatures
        width_count = sum(
            v for _lbl, v in fams["repro_batch_width_count"]
        )
        assert width_count == groups


class TestMerge:
    """Registry federation: family unification and collision safety."""

    def _node(self, total: float, node_free=False) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("reqs_total", "requests", ("lane",)).inc(total, lane="a")
        reg.gauge("depth", "queue depth").set(total / 2.0)
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        return reg

    def test_merge_unifies_families_with_extra_labels(self):
        fed = MetricsRegistry()
        fed.merge(self._node(3.0), extra_labels={"node": "0"})
        fed.merge(self._node(7.0), extra_labels={"node": "1"})
        assert fed.value("reqs_total", lane="a", node="0") == 3.0
        assert fed.value("reqs_total", lane="a", node="1") == 7.0
        assert fed.value("depth", node="1") == 3.5
        assert fed.get("lat").quantile(0.5, node="0") == fed.get(
            "lat"
        ).quantile(0.5, node="1")

    def test_merge_returns_self_for_chaining(self):
        fed = MetricsRegistry()
        out = fed.merge(self._node(1.0), extra_labels={"node": "0"}).merge(
            self._node(2.0), extra_labels={"node": "1"}
        )
        assert out is fed

    def test_merge_without_extra_labels_copies_samples(self):
        fed = MetricsRegistry()
        fed.merge(self._node(5.0))
        assert fed.value("reqs_total", lane="a") == 5.0

    def test_duplicate_label_set_rejected(self):
        fed = MetricsRegistry()
        fed.merge(self._node(1.0), extra_labels={"node": "0"})
        with pytest.raises(ValueError, match="duplicate label set"):
            fed.merge(self._node(2.0), extra_labels={"node": "0"})

    def test_kind_mismatch_rejected(self):
        fed = MetricsRegistry()
        fed.gauge("reqs_total", "oops")
        with pytest.raises(ValueError, match="cannot merge"):
            fed.merge(self._node(1.0))

    def test_label_set_mismatch_rejected(self):
        fed = MetricsRegistry()
        fed.counter("reqs_total", "requests", ("region",))
        with pytest.raises(ValueError, match="label sets differ"):
            fed.merge(self._node(1.0))

    def test_histogram_bounds_mismatch_rejected(self):
        fed = MetricsRegistry()
        fed.histogram("lat", "latency", buckets=(0.5, 1.0))
        other = MetricsRegistry()
        other.histogram("lat", "latency", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            fed.merge(other)

    def test_extra_label_colliding_with_family_label_rejected(self):
        fed = MetricsRegistry()
        with pytest.raises(ValueError, match="collide"):
            fed.merge(self._node(1.0), extra_labels={"lane": "x"})

    def test_merged_registry_renders_and_reparses(self):
        fed = MetricsRegistry()
        fed.merge(self._node(3.0), extra_labels={"node": "0"})
        fed.merge(self._node(7.0), extra_labels={"node": "1"})
        fams = parse_exposition(fed.render())
        assert sum(v for _lbl, v in fams["reqs_total"]) == 10.0
        labels = {dict(lbl)["node"] for lbl, _v in fams["depth"]}
        assert labels == {"0", "1"}

    def test_source_registry_untouched(self):
        src = self._node(3.0)
        before = src.render()
        MetricsRegistry().merge(src, extra_labels={"node": "0"})
        assert src.render() == before
