"""Anomaly detection: control bands, counter deltas, bus/flight wiring."""

import pytest

from repro.obs import AnomalyDetector, AnomalyEvent, MetricsRegistry, TimeSeriesStore


def _gauge_store(values, name="g") -> TimeSeriesStore:
    store = TimeSeriesStore()
    for i, v in enumerate(values):
        reg = MetricsRegistry()
        reg.gauge(name, "h").set(v)
        store.scrape(reg, now=float(i))
    return store


def _steady_with_spike(n=40, spike_at=25, level=2.0, spike=200.0):
    values = [level + 0.01 * (i % 3) for i in range(n)]
    values[spike_at] = spike
    return values


class TestDetection:
    def test_spike_fires_exactly_once(self):
        det = AnomalyDetector(warmup=8, window=16)
        events = det.scan(_gauge_store(_steady_with_spike()))
        assert len(events) == 1
        ev = events[0]
        assert ev.kind == "spike" and ev.series == "g" and ev.t == 25.0
        assert ev.value == 200.0 and ev.value > ev.upper

    def test_drop_detected(self):
        values = [10.0 + 0.01 * (i % 2) for i in range(40)]
        values[30] = -50.0
        det = AnomalyDetector(warmup=8, window=16)
        events = det.scan(_gauge_store(values))
        # The drop alarms first; the recovery back to baseline may alarm
        # a few more times while the deflated EWMA re-adapts, but the
        # baseline must converge well before the series ends.
        assert events and events[0].kind == "drop" and events[0].t == 30.0
        assert all(30.0 <= e.t <= 36.0 for e in events)

    def test_steady_series_never_alarms(self):
        det = AnomalyDetector()
        assert det.scan(_gauge_store([5.0] * 200)) == []
        # Float dust around a constant must stay inside the floor.
        dusty = [5.0 + 1e-12 * (i % 7) for i in range(200)]
        assert det.scan(_gauge_store(dusty, name="dust")) == []

    def test_warmup_suppresses_early_points(self):
        # The spike lands before warmup completes: no event, but the
        # baseline absorbs it and later normal points stay quiet.
        values = _steady_with_spike(n=20, spike_at=3)
        det = AnomalyDetector(warmup=16, window=16)
        assert det.scan(_gauge_store(values)) == []

    def test_incremental_scans_see_each_point_once(self):
        store = TimeSeriesStore()
        det = AnomalyDetector(warmup=8, window=16)
        values = _steady_with_spike()
        for i, v in enumerate(values):
            reg = MetricsRegistry()
            reg.gauge("g", "h").set(v)
            store.scrape(reg, now=float(i))
            det.scan(store)
        assert det.points_seen == len(values)
        assert len(det.events) == 1

    def test_counter_observed_as_per_scrape_delta(self):
        store = TimeSeriesStore()
        total = 0.0
        for i in range(40):
            total += 5.0 if i != 30 else 500.0  # one burst in the rate
            reg = MetricsRegistry()
            reg.counter("c_total", "h").inc(total)
            store.scrape(reg, now=float(i))
        det = AnomalyDetector(warmup=8, window=16)
        events = det.scan(store)
        assert [e.kind for e in events] == ["spike"]
        assert events[0].value == 500.0  # the delta, not the raw total

    def test_bucket_series_skipped(self):
        store = TimeSeriesStore()
        for i in range(40):
            reg = MetricsRegistry()
            h = reg.histogram("lat", "h", buckets=(1.0, 2.0))
            for _ in range(1 if i != 30 else 500):
                h.observe(0.5)
            store.scrape(reg, now=float(i))
        det = AnomalyDetector(warmup=8, window=16)
        events = det.scan(store)
        assert all(not e.series.endswith("_bucket") for e in events)
        # The _count series still alarms on the burst.
        assert any(e.series == "lat_count" for e in events)

    def test_ring_eviction_resynchronizes_without_alarm(self):
        store = TimeSeriesStore(capacity=8)
        det = AnomalyDetector(warmup=4, window=8)
        total = 0.0
        for i in range(6):
            total += 5.0
            reg = MetricsRegistry()
            reg.counter("c_total", "h").inc(total)
            store.scrape(reg, now=float(i))
        det.scan(store)
        # 20 more scrapes outrun the capacity-8 ring between scans.
        for i in range(6, 26):
            total += 5.0
            reg = MetricsRegistry()
            reg.counter("c_total", "h").inc(total)
            store.scrape(reg, now=float(i))
        assert det.scan(store) == []  # gap deltas are meaningless, not alarms


class TestWiring:
    def test_listeners_receive_events(self):
        seen = []
        det = AnomalyDetector(warmup=8, window=16)
        det.on_anomaly(seen.append)
        det.scan(_gauge_store(_steady_with_spike()))
        assert len(seen) == 1 and isinstance(seen[0], AnomalyEvent)

    def test_event_round_trips_as_dict(self):
        det = AnomalyDetector(warmup=8, window=16)
        (event,) = det.scan(_gauge_store(_steady_with_spike()))
        doc = event.as_dict()
        assert doc["series"] == "g" and doc["kind"] == "spike"
        assert "outside" in event.describe()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            AnomalyDetector(alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyDetector(k=-1.0)
        with pytest.raises(ValueError):
            AnomalyDetector(warmup=1)

    def test_service_bus_counts_anomalies(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(TrafficSpec(n_requests=24, seed=7))
        store = TimeSeriesStore(cadence_s=0.25)
        det = AnomalyDetector()
        broker, _ = run_trace(
            trace, ServiceConfig(n_service_workers=2), tsdb=store, anomaly=det
        )
        assert broker.telemetry.anomalies == len(det.events)
        assert broker.report()["anomalies"] == len(det.events)

    def test_scraping_is_pure_observation(self):
        from repro.service.broker import ServiceConfig, run_trace
        from repro.service.loadgen import TrafficSpec, generate_trace

        trace = generate_trace(TrafficSpec(n_requests=24, seed=7))
        cfg = ServiceConfig(n_service_workers=2)
        bare, _ = run_trace(trace, cfg)
        scraped, _ = run_trace(
            trace, cfg, tsdb=TimeSeriesStore(cadence_s=0.25)
        )
        bare_report = bare.report()
        scraped_report = scraped.report()
        assert bare_report == scraped_report
