"""Time-series store: exact round trips, ring eviction, cadence, federation."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, NULL_TSDB, Series, TimeSeriesStore
from repro.obs.tsdb import decode_floats, encode_floats, federate_stores


class TestCodec:
    def test_round_trip_is_bit_exact(self):
        values = [
            0.0, -0.0, 1.0, -1.0, 1e300, 5e-324, math.pi, 1e-9,
            float("inf"), -float("inf"), 2.0 ** 52, 1.0 + 2 ** -52,
        ]
        decoded = decode_floats(encode_floats(values))
        assert [math.copysign(1.0, v) for v in decoded] == [
            math.copysign(1.0, v) for v in values
        ]
        assert all(a == b for a, b in zip(decoded, values))

    def test_repeats_encode_to_zero_deltas(self):
        assert encode_floats([3.5, 3.5, 3.5])[1:] == [0, 0]

    def test_survives_json(self):
        values = [0.1 * i for i in range(100)]
        doc = json.loads(json.dumps(encode_floats(values)))
        assert decode_floats(doc) == values


class TestSeries:
    def test_append_and_window(self):
        s = Series("m", {"lane": "a"})
        for t in range(5):
            s.append(float(t), float(t) * 2.0)
        assert s.window(1.0, 3.0) == [(2.0, 4.0), (3.0, 6.0)]  # (start, end]
        assert s.latest_at(2.5) == (2.0, 4.0)
        assert s.latest_at(-1.0) is None

    def test_same_timestamp_overwrites(self):
        s = Series("m", {})
        s.append(1.0, 10.0)
        s.append(1.0, 20.0)
        assert s.points() == [(1.0, 20.0)]

    def test_non_monotonic_append_rejected(self):
        s = Series("m", {})
        s.append(2.0, 0.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            s.append(1.0, 0.0)

    def test_ring_eviction_keeps_newest(self):
        s = Series("m", {}, capacity=4)
        for t in range(10):
            s.append(float(t), float(t))
        assert len(s) == 4
        assert s.times() == [6.0, 7.0, 8.0, 9.0]
        assert s.evicted == 6

    def test_base_at_falls_back_to_oldest_retained(self):
        s = Series("m", {}, capacity=4)
        for t in range(10):
            s.append(float(t), float(t))
        # Window reaches past retained history: oldest retained point.
        assert s.base_at(9.0, window_s=100.0) == (6.0, 6.0)
        assert s.base_at(9.0, window_s=2.0) == (7.0, 7.0)


def _registry(total: float, depth: float) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("reqs_total", "h", ("lane",)).inc(total, lane="a")
    reg.gauge("depth", "h").set(depth)
    h = reg.histogram("lat", "h", buckets=(1.0, 2.0))
    h.observe(0.5)
    return reg


class TestStore:
    def test_scrape_builds_series_per_label_set(self):
        store = TimeSeriesStore()
        store.scrape(_registry(3.0, 2.0), now=1.0)
        store.scrape(_registry(5.0, 1.0), now=2.0)
        assert store.get("reqs_total", {"lane": "a"}).values() == [3.0, 5.0]
        assert store.get("depth").values() == [2.0, 1.0]
        assert store.families["reqs_total"] == "counter"
        assert store.families["lat_bucket"] == "histogram"
        assert store.scrape_times == [1.0, 2.0]
        assert store.n_scrapes == 2

    def test_missing_series_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(KeyError, match="no series"):
            store.get("absent")

    def test_cadence_gates_due(self):
        store = TimeSeriesStore(cadence_s=1.0)
        assert store.due(0.0)  # first scrape always due
        store.scrape(_registry(0.0, 0.0), now=0.0)
        assert not store.due(0.0)  # same instant: never
        assert not store.due(0.5)
        assert store.due(1.0)
        calls = []

        def registry_fn():
            calls.append(1)
            return _registry(1.0, 1.0)

        assert not store.maybe_scrape(registry_fn, now=0.5)
        assert calls == []  # off-cadence must not build the snapshot
        assert store.maybe_scrape(registry_fn, now=1.5)
        assert calls == [1]

    def test_json_round_trip_is_exact_and_stable(self):
        store = TimeSeriesStore(capacity=64, cadence_s=0.25)
        for i in range(20):
            store.scrape(_registry(float(i) * 1.1, math.sin(i)), now=i * 0.3)
        doc = json.loads(json.dumps(store.to_dict()))
        clone = TimeSeriesStore.from_dict(doc)
        assert clone.scrape_times == store.scrape_times
        assert clone.families == store.families
        for a, b in zip(store.series(), clone.series()):
            assert a.key == b.key and a.kind == b.kind
            assert a.points() == b.points()
        # Byte-stable: serializing the clone reproduces the document.
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            store.to_dict(), sort_keys=True
        )

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            TimeSeriesStore.from_dict({"schema": "nope"})

    def test_to_dict_since_trims_window(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.scrape(_registry(float(i), float(i)), now=float(i))
        doc = store.to_dict(since=7.0)
        assert decode_floats(doc["scrape_times"]) == [7.0, 8.0, 9.0]
        for sdoc in doc["series"]:
            assert len(sdoc["t"]) == 3

    def test_null_store_is_disabled_and_inert(self):
        assert not NULL_TSDB.enabled
        assert not NULL_TSDB.due(0.0)
        assert NULL_TSDB.scrape(None, 0.0) == 0
        assert not NULL_TSDB.maybe_scrape(None, 0.0)
        assert NULL_TSDB.series() == [] and len(NULL_TSDB) == 0


class TestFederation:
    def _store(self, depth: float) -> TimeSeriesStore:
        store = TimeSeriesStore()
        store.scrape(_registry(1.0, depth), now=1.0)
        return store

    def test_adds_constant_node_label(self):
        fed = federate_stores({"0": self._store(1.0), "1": self._store(2.0)})
        assert fed.get("depth", {"node": "0"}).values() == [1.0]
        assert fed.get("depth", {"node": "1"}).values() == [2.0]
        assert fed.scrape_times == [1.0]

    def test_existing_label_collision_rejected(self):
        store = TimeSeriesStore()
        store.add_series(Series("m", {"node": "x"}))
        with pytest.raises(ValueError, match="federation label"):
            federate_stores({"0": store})

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            federate_stores({})

    def test_members_unmodified(self):
        a = self._store(1.0)
        before = json.dumps(a.to_dict(), sort_keys=True)
        federate_stores({"0": a})
        assert json.dumps(a.to_dict(), sort_keys=True) == before
