"""Golden-file trace test and the virtual-time-invariance guarantee.

A small deterministic serve run must (a) produce a schema-valid Chrome
trace with the full request -> batch -> task -> kernel hierarchy, (b)
match the committed golden structure (event multiset + track names —
timestamps are covered by determinism tests elsewhere), and (c) leave
every run result bit-identical whether tracing is on, off, or the
no-op tracer is passed explicitly.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.obs import NULL_TRACER, EventTracer, to_chrome, validate_chrome_trace
from repro.service.broker import ServiceConfig, run_trace
from repro.service.loadgen import TrafficSpec, generate_trace

GOLDEN = pathlib.Path(__file__).parent / "golden_serve_trace.json"


def _golden_run(tracer=None):
    trace = generate_trace(TrafficSpec(n_requests=24, seed=11, n_distinct=8))
    return run_trace(trace, ServiceConfig(n_service_workers=1), tracer=tracer)


def _structure(tracer):
    from collections import Counter

    keyed = Counter(
        (
            ev.ph,
            ev.cat,
            ev.name
            if ev.ph in ("b", "e", "i", "C")
            or ev.cat in ("ingress", "compute", "egress")
            else "",
        )
        for ev in tracer.events
    )
    return {
        "event_counts": {"|".join(k): v for k, v in sorted(keyed.items())},
        "tracks": sorted(f"{t.process}/{t.thread}" for t in tracer.tracks),
        "n_events": len(tracer.events),
    }


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = EventTracer()
        broker, tickets = _golden_run(tracer)
        return tracer, broker, tickets

    def test_schema_valid(self, traced):
        tracer, _broker, _tickets = traced
        assert validate_chrome_trace(to_chrome(tracer)) == []

    def test_structure_matches_golden_file(self, traced):
        tracer, _broker, _tickets = traced
        golden = json.loads(GOLDEN.read_text())
        assert _structure(tracer) == golden

    def test_hierarchy_request_batch_task_kernel(self, traced):
        """Every level of the span hierarchy is present and consistent."""
        tracer, _broker, tickets = traced
        by_cat: dict[str, list] = {}
        for ev in tracer.events:
            by_cat.setdefault(ev.cat, []).append(ev)
        # request level: one b/e pair per completed ticket
        begins = [e for e in by_cat["request"] if e.ph == "b"]
        ends = [e for e in by_cat["request"] if e.ph == "e"]
        done = [t for t in tickets if t is not None and t.done]
        assert len(begins) == len(ends) == len(done)
        # batch level: dispatch spans cover their batch spans
        assert len(by_cat["dispatch"]) == len(by_cat["batch"])
        # task level: every task span nests inside its batch's interval
        batch_lo = min(e.ts for e in by_cat["batch"])
        batch_hi = max(e.ts + e.dur for e in by_cat["batch"])
        for ev in by_cat["task"]:
            assert ev.ts >= batch_lo - 1e-9
            assert ev.ts + ev.dur <= batch_hi + 1e-9
        # kernel level: ingress/compute/egress triplets per GPU task
        gpu_tasks = sum(1 for e in by_cat["task"] if e.args["placement"] == "gpu")
        assert len(by_cat["ingress"]) == gpu_tasks
        assert len(by_cat["compute"]) == gpu_tasks
        assert len(by_cat["egress"]) == gpu_tasks

    def test_placement_attributes_on_scheduler_instants(self, traced):
        tracer, _broker, _tickets = traced
        alloc = [e for e in tracer.events if e.name == "sche_alloc"]
        assert alloc
        for ev in alloc:
            assert "chosen" in ev.args
            assert "loads" in ev.args
            assert "histories" in ev.args

    def test_trace_is_deterministic(self, traced):
        tracer, _broker, _tickets = traced
        again = EventTracer()
        _golden_run(again)
        assert [
            (e.ph, e.name, e.cat, e.track, e.ts, e.dur) for e in again.events
        ] == [(e.ph, e.name, e.cat, e.track, e.ts, e.dur) for e in tracer.events]


class TestNoOpInvariance:
    def test_traced_serve_identical_to_untraced(self):
        b_off, t_off = _golden_run()
        b_on, t_on = _golden_run(EventTracer())
        assert json.dumps(b_off.report(), sort_keys=True) == json.dumps(
            b_on.report(), sort_keys=True
        )
        assert [t.latency_s for t in t_off if t] == [
            t.latency_s for t in t_on if t
        ]

    def test_null_tracer_run_identical_to_default(self):
        tasks = build_tasks(WorkloadSpec(n_points=2))
        cfg = HybridConfig(n_gpus=1, max_queue_length=4, record_trace=True)
        base = HybridRunner(cfg).run(tasks)
        null = HybridRunner(cfg, tracer=NULL_TRACER).run(tasks)
        traced = HybridRunner(cfg, tracer=EventTracer()).run(tasks)
        assert base.makespan_s == null.makespan_s == traced.makespan_s
        for other in (null, traced):
            assert np.array_equal(base.metrics.gpu_tasks, other.metrics.gpu_tasks)
            assert base.metrics.cpu_tasks == other.metrics.cpu_tasks
            assert [
                (e.task_id, e.device, e.enqueue, e.start, e.end)
                for e in base.metrics.trace
            ] == [
                (e.task_id, e.device, e.enqueue, e.start, e.end)
                for e in other.metrics.trace
            ]
