"""The span tracer: null implementation, recording, track interning."""

import pytest

from repro.cluster.simclock import SimClock
from repro.obs import NULL_TRACER, EventTracer, NullTracer, WallClock


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_every_method_is_a_silent_noop(self):
        t = NullTracer()
        assert t.bind(object()) is t
        assert t.track("p", "t") == 0
        t.complete(0, "x", 0.0)
        t.span(0, "x", 0.0, 1.0)
        t.instant(0, "x")
        t.async_begin(0, "x", 1)
        t.async_end(0, "x", 1)
        t.counter(0, "x", 3)

    def test_singleton_is_shared(self):
        from repro.obs.tracer import NULL_TRACER as again

        assert again is NULL_TRACER


class TestEventTracer:
    def test_requires_clock(self):
        with pytest.raises(RuntimeError, match="no clock"):
            _ = EventTracer().now

    def test_bind_returns_self(self):
        t = EventTracer()
        assert t.bind(SimClock()) is t

    def test_track_interning_is_stable(self):
        t = EventTracer()
        a = t.track("svc0", "gpu0")
        b = t.track("svc0", "gpu1")
        assert a != b
        assert t.track("svc0", "gpu0") == a
        assert t.tracks[a].process == "svc0"
        assert t.tracks[a].thread == "gpu0"

    def test_complete_records_virtual_interval(self):
        clock = SimClock()
        t = EventTracer(clock)

        def proc():
            yield 2.5
            t.complete(0, "work", 0.5, cat="k")

        clock.spawn(proc())
        clock.run()
        (ev,) = t.events
        assert ev.ph == "X"
        assert ev.ts == 0.5
        assert ev.dur == 2.0
        assert ev.cat == "k"

    def test_span_uses_explicit_interval(self):
        t = EventTracer(SimClock())
        t.span(1, "s", 1.0, 4.0)
        assert t.events[0].ts == 1.0
        assert t.events[0].dur == 3.0

    def test_async_pair_and_instant_and_counter(self):
        t = EventTracer(SimClock())
        t.async_begin(0, "req", 7, cat="request")
        t.async_end(0, "req", 7, cat="request")
        t.instant(0, "hit", cat="cache")
        t.counter(0, "depth", 3)
        phases = [ev.ph for ev in t.events]
        assert phases == ["b", "e", "i", "C"]
        assert t.events[0].id == 7
        assert t.events[3].args == {"value": 3}

    def test_wall_clock_is_monotone_from_zero(self):
        wc = WallClock()
        a = wc.now
        b = wc.now
        assert 0.0 <= a <= b
