"""Profiler: attribution invariants, critical path, flamegraph export."""

import pytest

from repro.obs import Profile, render_profile, to_collapsed, write_collapsed
from repro.obs.tracer import EventTracer
from repro.service.broker import ServiceConfig, run_trace
from repro.service.loadgen import TrafficSpec, generate_trace


@pytest.fixture(scope="module")
def golden():
    """The same deterministic serve run the golden-trace tests use."""
    tracer = EventTracer()
    trace = generate_trace(TrafficSpec(n_requests=24, seed=11, n_distinct=8))
    broker, tickets = run_trace(
        trace, ServiceConfig(n_service_workers=1), tracer=tracer
    )
    return tracer, broker


class TestTrackInvariants:
    def test_self_plus_children_sums_to_track_total(self, golden):
        """Per track: Σ self over the forest == busy time (root union)."""
        tracer, _broker = golden
        profile = Profile.from_tracer(tracer)
        checked = 0
        for track in profile.tracks:
            if not track.roots:
                continue
            self_sum = sum(node.self_s for node in track.nodes())
            assert self_sum == pytest.approx(track.total_s, rel=1e-9), track.label
            checked += 1
        assert checked >= 5  # dispatch, batches, ranks, gpu, service tracks

    def test_self_time_is_never_negative(self, golden):
        tracer, _broker = golden
        for track in Profile.from_tracer(tracer).tracks:
            for node in track.nodes():
                assert node.self_s >= -1e-9, (track.label, node.name)

    def test_top_down_paths_nest_and_self_non_negative(self, golden):
        tracer, _broker = golden
        rows = Profile.from_tracer(tracer).top_down()
        paths = {path for path, *_ in rows}
        assert "dispatch" in paths
        assert "dispatch;batch;task" in paths
        assert "dispatch;batch;task;compute" in paths
        for path, n, total, self_s in rows:
            assert n > 0
            assert total >= 0.0
            # Union-of-children semantics: a parent's self is wall time
            # not covered by any child, so it can never go negative even
            # though children run concurrently across rank tracks.
            assert self_s >= -1e-9, path

    def test_category_table_totals(self, golden):
        tracer, _broker = golden
        table = Profile.from_tracer(tracer).category_table()
        cats = {cat: (n, total, self_s) for cat, n, total, self_s in table}
        assert cats["task"][0] > 0
        assert cats["compute"][1] > 0.0


class TestDeviceUsage:
    def test_utilization_and_gaps_partition_the_window(self, golden):
        tracer, _broker = golden
        profile = Profile.from_tracer(tracer)
        devices = profile.device_usage()
        assert devices, "serve trace must contain a gpu track"
        lo, hi = profile.window
        for d in devices:
            assert 0.0 <= d.utilization <= 1.0
            assert d.busy_s + d.idle_s == pytest.approx(hi - lo, rel=1e-6)
            assert d.largest_gap_s <= d.idle_s + 1e-12


class TestCriticalPath:
    def test_path_is_contiguous_and_inside_the_batch(self, golden):
        tracer, _broker = golden
        profile = Profile.from_tracer(tracer)
        batch = profile.batches()[0]
        path = profile.critical_path(batch)
        assert path
        cursor = batch.start
        for _label, node in path:
            assert node.start >= batch.start - 1e-9
            assert node.end <= batch.end + 1e-9
            assert node.start >= cursor - 1e-9  # forward time order
            cursor = node.start
        # The chain reaches the batch end.
        assert path[-1][1].end == pytest.approx(batch.end, abs=1e-9)

    def test_path_covers_most_of_the_makespan(self, golden):
        tracer, _broker = golden
        profile = Profile.from_tracer(tracer)
        batch = profile.batches()[0]
        covered = sum(n.total_s for _l, n in profile.critical_path(batch))
        # Saturated batches are wait-free on the critical chain.
        assert covered >= 0.9 * batch.total_s


class TestRender:
    def test_report_sections_present(self, golden):
        tracer, _broker = golden
        text = render_profile(Profile.from_tracer(tracer))
        assert "trace window" in text
        assert "category path" in text
        assert "device" in text
        assert "critical path" in text

    def test_empty_profile_renders_placeholder(self):
        assert render_profile(Profile.from_tracer(EventTracer())) == (
            "(no spans recorded)"
        )

    def test_broker_profile_handle(self, golden):
        _tracer, broker = golden
        assert isinstance(broker.profile(), Profile)

    def test_untraced_broker_profile_raises(self):
        from repro.atomic.database import AtomicConfig, AtomicDatabase
        from repro.cluster.simclock import SimClock
        from repro.service.broker import SpectrumBroker

        broker = SpectrumBroker(
            SimClock(), db=AtomicDatabase(AtomicConfig(n_max=2, z_max=2))
        )
        with pytest.raises(ValueError, match="no event tracer"):
            broker.profile()


class TestCollapsed:
    def test_lines_are_speedscope_collapsed_format(self, golden):
        """Each line must parse the way speedscope's importer does:
        rsplit on the last space -> (`;`-joined frames, integer weight)."""
        tracer, _broker = golden
        lines = to_collapsed(tracer)
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0  # integer, positive (zero dropped)
            frames = stack.split(";")
            assert len(frames) >= 3  # process;thread;span...
            assert all(frames)

    def test_weights_match_self_times(self, golden):
        tracer, _broker = golden
        lines = to_collapsed(tracer)
        total_weight = sum(int(l.rsplit(" ", 1)[1]) for l in lines)
        profile = Profile.from_tracer(tracer)
        total_self = sum(
            node.self_s for t in profile.tracks for node in t.nodes()
        )
        assert total_weight == pytest.approx(total_self * 1e6, rel=1e-3)

    def test_write_collapsed_round_trips(self, golden, tmp_path):
        tracer, _broker = golden
        path = tmp_path / "profile.collapsed"
        n = write_collapsed(str(path), tracer)
        on_disk = path.read_text().splitlines()
        assert len(on_disk) == n == len(to_collapsed(tracer))

    def test_empty_tracer_collapses_to_nothing(self, tmp_path):
        path = tmp_path / "empty.collapsed"
        assert write_collapsed(str(path), EventTracer()) == 0
        assert path.read_text() == ""


class TestHybridRunnerHandles:
    def test_registry_and_profile_handles(self):
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner
        from repro.obs import MetricsRegistry

        tasks = build_tasks(WorkloadSpec(n_points=2))
        tracer = EventTracer()
        runner = HybridRunner(
            HybridConfig(n_gpus=1, max_queue_length=4), tracer=tracer
        )
        result = runner.run(tasks)
        reg = runner.registry(result, wall_s=0.25)
        assert isinstance(reg, MetricsRegistry)
        assert reg.value("repro_makespan_seconds") == pytest.approx(
            result.makespan_s
        )
        profile = runner.profile()
        assert profile.batches(), "batch span must be visible to the profiler"

    def test_untraced_runner_profile_raises(self):
        from repro.core.hybrid import HybridRunner

        with pytest.raises(ValueError, match="no event tracer"):
            HybridRunner().profile()
