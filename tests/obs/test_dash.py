"""Dashboard renderer: deterministic, self-contained, annotated HTML."""

import os

import pytest

from repro.obs import (
    AnomalyDetector,
    MetricsRegistry,
    Panel,
    Rule,
    SERVICE_PANELS,
    SLOEngine,
    TimeSeriesStore,
    federate,
    render_dashboard,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_dash.html")


def _canned_store() -> TimeSeriesStore:
    """A small deterministic store: counter, gauge, histogram over 12 scrapes."""
    store = TimeSeriesStore()
    for i in range(12):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "h", ("lane",)).inc(3.0 * i, lane="a")
        reg.gauge("depth", "h").set(float((i * 5) % 7))
        h = reg.histogram("lat", "h", buckets=(0.5, 1.0, 2.0))
        for j in range(i):
            h.observe(0.1 + 0.2 * (j % 9))
        store.scrape(reg, now=0.5 * i)
    return store


def _render() -> str:
    store = _canned_store()
    slo = SLOEngine((Rule(name="deep", metric="depth", op=">", threshold=4.0),))
    for t in (0.0, 2.0, 4.0):
        # Re-sample the stored gauge states to produce transitions.
        reg = MetricsRegistry()
        point = store.get("depth").latest_at(t)
        reg.gauge("depth", "h").set(point[1])
        slo.sample(reg, now=t)
    detector = AnomalyDetector(warmup=4, window=8)
    detector.scan(store)
    panels = (
        Panel("Request rate", "rate(reqs_total[2s])", unit="req/s"),
        Panel("Queue depth", "depth"),
        Panel("p95 latency", "histogram_quantile(0.95, lat_bucket)", unit="s"),
        Panel("Broken query", "rate(nope"),
        Panel("No data", "absent_metric"),
    )
    return render_dashboard(
        store,
        panels=panels,
        title="golden dashboard",
        slo=slo,
        anomalies=detector.events,
    )


class TestRenderer:
    def test_render_is_deterministic(self):
        assert _render() == _render()

    def test_matches_golden_file(self):
        html = _render()
        if not os.path.exists(GOLDEN):  # pragma: no cover - regeneration aid
            with open(GOLDEN, "w") as fh:
                fh.write(html)
            pytest.fail(f"golden file was missing; wrote {GOLDEN} — rerun")
        with open(GOLDEN) as fh:
            assert html == fh.read(), (
                "dashboard HTML drifted from tests/obs/golden_dash.html; "
                "if intentional, delete the golden file and rerun this test"
            )

    def test_self_contained(self):
        html = _render()
        assert html.startswith("<!DOCTYPE html>")
        # No scripts, no external fetches (the SVG xmlns is a namespace
        # identifier, not a network reference).
        for forbidden in ("<script", "src=", "href=", "@import", "url("):
            assert forbidden not in html
        assert "<svg" in html

    def test_panels_render_data_errors_and_gaps(self):
        html = _render()
        assert "Request rate" in html and "req/s" in html
        assert "query error" in html  # the broken panel degrades gracefully
        assert "no data" in html  # the absent-series panel
        assert "3/5 panels rendered" in html

    def test_annotations_present(self):
        html = _render()
        assert "Annotations" in html
        assert "slo" in html  # the depth rule fires at t=2 (value 5 > 4)

    def test_default_service_panels(self):
        # A non-service store falls back to auto-panels, one per family.
        html = render_dashboard(_canned_store())
        assert "reqs_total" in html and "depth" in html
        assert len(SERVICE_PANELS) >= 6

    def test_escaping(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        reg.gauge("g", "h", ("q",)).set(1.0, q='<&">')
        store.scrape(reg, now=0.0)
        store.scrape(reg, now=1.0)
        html = render_dashboard(store, title="<title> & co")
        assert "<title> & co" not in html
        assert "&lt;title&gt; &amp; co" in html


class TestFederatedDashboard:
    def test_node_labels_render(self):
        stores = {str(i): _canned_store() for i in range(3)}
        fed = federate(stores)
        html = render_dashboard(fed, title="cluster")
        for node in ("0", "1", "2"):
            assert f"node={node}" in html
