"""Event buses, the latency reservoir, and TaskEvent timing fields."""

import numpy as np
import pytest

from repro.core.metrics import MetricsLedger, TaskEvent
from repro.obs import EventTracer, RunBus, ServiceBus
from repro.cluster.simclock import SimClock
from repro.service.telemetry import LaneStats, ServiceTelemetry


class TestRunBus:
    def test_forwards_to_bare_ledger(self):
        ledger = MetricsLedger(n_devices=2, max_queue_length=4)
        bus = RunBus(ledger)
        bus.on_load_change(0, 0, 1, 0.0)
        bus.on_load_change(0, 1, 0, 1.0)
        bus.on_cpu_task()
        bus.on_task_timing(0.25, 1.0)
        assert ledger.cpu_tasks == 1
        assert ledger.load_residency[0, 1] == pytest.approx(1.0)

    def test_mirrors_load_to_counter_track(self):
        ledger = MetricsLedger(n_devices=1, max_queue_length=4)
        tracer = EventTracer(SimClock())
        track = tracer.track("node", "gpu0")
        bus = RunBus(ledger, tracer, (track,))
        bus.on_load_change(0, 0, 2, 0.0)
        counters = [e for e in tracer.events if e.ph == "C"]
        assert counters and counters[0].args == {"value": 2}

    def test_ledger_math_identical_through_bus(self):
        direct = MetricsLedger(n_devices=1, max_queue_length=4)
        routed = MetricsLedger(n_devices=1, max_queue_length=4)
        bus = RunBus(routed, EventTracer(SimClock()), (0,))
        for ledger_call in (direct, bus):
            ledger_call.on_load_change(0, 0, 1, 0.5)
            ledger_call.on_load_change(0, 1, 2, 1.0)
            ledger_call.on_load_change(0, 2, 0, 3.0)
            ledger_call.on_task_timing(0.1, 0.9)
        assert np.array_equal(direct.load_residency, routed.load_residency)
        assert direct.task_waits == routed.task_waits
        assert direct.task_services == routed.task_services


class TestServiceBus:
    def test_forwards_and_mirrors(self):
        tel = ServiceTelemetry(("interactive",))
        tracer = EventTracer(SimClock())
        bus = ServiceBus(
            tel,
            tracer,
            queue_track=tracer.track("service", "queue"),
            lane_tracks={"interactive": tracer.track("service", "lane.interactive")},
        )
        bus.on_arrival("interactive")
        bus.on_rejection("interactive")
        bus.on_retry("interactive")
        bus.on_queue_depth(3, 0.0)
        bus.finalize(1.0)
        stats = tel.lanes["interactive"]
        assert (stats.arrivals, stats.rejections, stats.retries) == (1, 1, 1)
        assert tel.max_depth == 3
        names = [e.name for e in tracer.events]
        assert "rejected" in names
        assert "retry" in names
        assert "queue_depth" in names


class TestLatencyReservoir:
    def test_unbounded_by_default(self):
        stats = LaneStats()
        for i in range(500):
            stats.record_latency(float(i))
        assert len(stats.latencies_s) == 500

    def test_reservoir_caps_memory(self):
        stats = LaneStats(reservoir=32)
        for i in range(10_000):
            stats.record_latency(float(i))
        assert len(stats.latencies_s) == 32
        assert all(0.0 <= v < 10_000.0 for v in stats.latencies_s)

    def test_mean_and_max_exact_despite_sampling(self):
        stats = LaneStats(reservoir=8)
        values = [float(i) for i in range(1000)]
        for v in values:
            stats.record_latency(v)
        assert stats.mean_latency_s() == pytest.approx(np.mean(values))
        assert stats.max_latency_s() == max(values)

    def test_sampling_is_deterministic(self):
        def fill():
            s = LaneStats(reservoir=16)
            for i in range(2000):
                s.record_latency(float(i))
            return s.latencies_s

        assert fill() == fill()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LaneStats(reservoir=0)

    def test_hand_built_stats_still_report(self):
        stats = LaneStats(latencies_s=[1.0, 3.0])
        assert stats.mean_latency_s() == pytest.approx(2.0)
        assert stats.max_latency_s() == 3.0

    def test_telemetry_threads_reservoir_to_lanes(self):
        tel = ServiceTelemetry(("a", "b"), latency_reservoir=4)
        for _ in range(10):
            tel.on_completion("a", 1.0, cached=False, coalesced=False)
        assert len(tel.lanes["a"].latencies_s) == 4
        assert tel.lanes["a"].completions == 10


class TestTaskEventTiming:
    def test_wait_derived_from_enqueue(self):
        ev = TaskEvent(
            rank=0, task_id=1, placement="gpu", device=0,
            start=2.0, end=5.0, enqueue=1.5,
        )
        assert ev.wait == pytest.approx(0.5)
        assert ev.duration == pytest.approx(3.0)

    def test_wait_zero_without_enqueue(self):
        ev = TaskEvent(0, 2, "cpu", -1, 1.0, 2.0)
        assert ev.enqueue is None
        assert ev.wait == 0.0

    def test_hybrid_run_records_enqueue_separately(self):
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner

        tasks = build_tasks(WorkloadSpec(n_points=1))
        result = HybridRunner(
            HybridConfig(n_gpus=1, max_queue_length=2, record_trace=True)
        ).run(tasks)
        events = result.metrics.trace
        assert events
        for ev in events:
            assert ev.enqueue is not None
            assert ev.enqueue <= ev.start <= ev.end
            assert ev.wait == pytest.approx(ev.start - ev.enqueue)
        # Some GPU tasks in a contended run actually waited.
        assert any(ev.wait > 0 for ev in events if ev.placement == "gpu")
