"""Chrome trace export, the schema validator, terminal renderers."""

import json

from repro.cluster.simclock import SimClock
from repro.obs import (
    EventTracer,
    render_gantt,
    render_summary,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced():
    t = EventTracer(SimClock())
    gpu = t.track("node", "gpu0")
    lane = t.track("service", "lane.interactive")
    t.span(gpu, "outer", 0.0, 4.0, cat="task")
    t.span(gpu, "inner", 1.0, 3.0, cat="compute")
    t.async_begin(lane, "request", 1, cat="request")
    t.async_end(lane, "request", 1, cat="request")
    t.instant(lane, "hit", cat="cache")
    t.counter(lane, "depth", 2)
    return t


class TestToChrome:
    def test_metadata_names_processes_and_threads(self):
        rows = to_chrome(_traced())
        meta = [r for r in rows if r["ph"] == "M"]
        names = {(r["name"], r["args"]["name"]) for r in meta}
        assert ("process_name", "node") in names
        assert ("process_name", "service") in names
        assert ("thread_name", "gpu0") in names
        assert ("thread_name", "lane.interactive") in names

    def test_distinct_processes_get_distinct_pids(self):
        rows = to_chrome(_traced())
        pids = {r["pid"] for r in rows if r["ph"] == "M" and r["name"] == "process_name"}
        assert len(pids) == 2

    def test_seconds_become_microseconds(self):
        rows = to_chrome(_traced())
        outer = next(r for r in rows if r["name"] == "outer")
        assert outer["ts"] == 0.0
        assert outer["dur"] == 4.0e6

    def test_nested_spans_sorted_outermost_first(self):
        rows = [r for r in to_chrome(_traced()) if r["ph"] == "X"]
        assert [r["name"] for r in rows] == ["outer", "inner"]

    def test_instant_is_thread_scoped_and_counter_has_value(self):
        rows = to_chrome(_traced())
        hit = next(r for r in rows if r["name"] == "hit")
        assert hit["s"] == "t"
        depth = next(r for r in rows if r["name"] == "depth")
        assert depth["args"] == {"value": 2}

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), _traced())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_clean_trace_passes(self):
        assert validate_chrome_trace(to_chrome(_traced())) == []

    def test_negative_duration_flagged(self):
        bad = [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1.0}]
        assert any("bad dur" in p for p in validate_chrome_trace(bad))

    def test_missing_keys_flagged(self):
        assert any(
            "missing" in p for p in validate_chrome_trace([{"ph": "X", "ts": 0.0}])
        )

    def test_unmatched_async_begin_flagged(self):
        bad = [
            {"name": "r", "cat": "q", "ph": "b", "id": 1, "pid": 1, "tid": 1, "ts": 0.0}
        ]
        assert any("unmatched" in p for p in validate_chrome_trace(bad))

    def test_end_without_begin_flagged(self):
        bad = [
            {"name": "r", "cat": "q", "ph": "e", "id": 1, "pid": 1, "tid": 1, "ts": 0.0}
        ]
        assert any("no open 'b'" in p for p in validate_chrome_trace(bad))

    def test_crossing_spans_flagged(self):
        bad = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 5.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 2.0, "dur": 6.0},
        ]
        assert any("crosses" in p for p in validate_chrome_trace(bad))

    def test_disjoint_and_nested_spans_pass(self):
        good = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 4.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 1.0, "dur": 2.0},
            {"name": "c", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
        ]
        assert validate_chrome_trace(good) == []


class TestRenderers:
    def test_gantt_has_one_row_per_track(self):
        out = render_gantt(_traced())
        assert "node/gpu0" in out
        assert "service/lane.interactive" in out
        assert "#" in out

    def test_gantt_empty_trace(self):
        assert "no spans" in render_gantt(EventTracer(SimClock()))

    def test_summary_totals_by_category(self):
        out = render_summary(_traced())
        assert "task" in out
        assert "compute" in out


class TestGanttEdgeCases:
    def test_empty_tracer(self):
        assert render_gantt(EventTracer(SimClock())) == "(no spans recorded)"

    def test_only_non_span_events_counts_as_empty(self):
        t = EventTracer(SimClock())
        lane = t.track("service", "lane.interactive")
        t.instant(lane, "hit", cat="cache")
        t.counter(lane, "depth", 1)
        assert "no spans" in render_gantt(t)

    def test_all_zero_duration_spans(self):
        """Spans at t=0 with dur=0: t_max is 0, nothing to scale by."""
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "tick", 0.0, 0.0, cat="task")
        out = render_gantt(t)
        assert "zero-length trace" in out

    def test_zero_duration_span_amid_real_spans(self):
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "work", 0.0, 2.0, cat="task")
        t.span(gpu, "tick", 1.0, 1.0, cat="wait")  # zero-duration marker
        out = render_gantt(t)
        assert "node/gpu0" in out
        assert "#" in out  # the real span still renders

    def test_single_instant_track_alongside_span_track(self):
        """A track holding only a zero-duration span must keep its row
        without disturbing the busy column of the others."""
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        mark = t.track("node", "marks")
        t.span(gpu, "work", 0.0, 4.0, cat="task")
        t.span(mark, "pulse", 2.0, 2.0, cat="task")
        out = render_gantt(t)
        assert "node/gpu0" in out
        assert "node/marks" in out
        gpu_row = next(l for l in out.splitlines() if "node/gpu0" in l)
        assert "#" in gpu_row

    def test_gantt_zero_duration_does_not_crash_summary(self):
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "tick", 0.0, 0.0, cat="task")
        out = render_summary(t)
        assert "task" in out
