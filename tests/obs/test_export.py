"""Chrome trace export, the schema validator, terminal renderers."""

import json

from repro.cluster.simclock import SimClock
from repro.obs import (
    EventTracer,
    render_gantt,
    render_summary,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced():
    t = EventTracer(SimClock())
    gpu = t.track("node", "gpu0")
    lane = t.track("service", "lane.interactive")
    t.span(gpu, "outer", 0.0, 4.0, cat="task")
    t.span(gpu, "inner", 1.0, 3.0, cat="compute")
    t.async_begin(lane, "request", 1, cat="request")
    t.async_end(lane, "request", 1, cat="request")
    t.instant(lane, "hit", cat="cache")
    t.counter(lane, "depth", 2)
    return t


class TestToChrome:
    def test_metadata_names_processes_and_threads(self):
        rows = to_chrome(_traced())
        meta = [r for r in rows if r["ph"] == "M"]
        names = {(r["name"], r["args"]["name"]) for r in meta}
        assert ("process_name", "node") in names
        assert ("process_name", "service") in names
        assert ("thread_name", "gpu0") in names
        assert ("thread_name", "lane.interactive") in names

    def test_distinct_processes_get_distinct_pids(self):
        rows = to_chrome(_traced())
        pids = {r["pid"] for r in rows if r["ph"] == "M" and r["name"] == "process_name"}
        assert len(pids) == 2

    def test_seconds_become_microseconds(self):
        rows = to_chrome(_traced())
        outer = next(r for r in rows if r["name"] == "outer")
        assert outer["ts"] == 0.0
        assert outer["dur"] == 4.0e6

    def test_nested_spans_sorted_outermost_first(self):
        rows = [r for r in to_chrome(_traced()) if r["ph"] == "X"]
        assert [r["name"] for r in rows] == ["outer", "inner"]

    def test_instant_is_thread_scoped_and_counter_has_value(self):
        rows = to_chrome(_traced())
        hit = next(r for r in rows if r["name"] == "hit")
        assert hit["s"] == "t"
        depth = next(r for r in rows if r["name"] == "depth")
        assert depth["args"] == {"value": 2}

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(str(path), _traced())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_clean_trace_passes(self):
        assert validate_chrome_trace(to_chrome(_traced())) == []

    def test_negative_duration_flagged(self):
        bad = [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1.0}]
        assert any("bad dur" in p for p in validate_chrome_trace(bad))

    def test_missing_keys_flagged(self):
        assert any(
            "missing" in p for p in validate_chrome_trace([{"ph": "X", "ts": 0.0}])
        )

    def test_unmatched_async_begin_flagged(self):
        bad = [
            {"name": "r", "cat": "q", "ph": "b", "id": 1, "pid": 1, "tid": 1, "ts": 0.0}
        ]
        assert any("unmatched" in p for p in validate_chrome_trace(bad))

    def test_end_without_begin_flagged(self):
        bad = [
            {"name": "r", "cat": "q", "ph": "e", "id": 1, "pid": 1, "tid": 1, "ts": 0.0}
        ]
        assert any("no open 'b'" in p for p in validate_chrome_trace(bad))

    def test_crossing_spans_flagged(self):
        bad = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 5.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 2.0, "dur": 6.0},
        ]
        assert any("crosses" in p for p in validate_chrome_trace(bad))

    def test_disjoint_and_nested_spans_pass(self):
        good = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 4.0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 1.0, "dur": 2.0},
            {"name": "c", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
        ]
        assert validate_chrome_trace(good) == []


def _linked():
    """A small causal chain: request root -> group span -> child span."""
    t = EventTracer(SimClock())
    lane = t.track("service", "lane.interactive")
    gpu = t.track("node", "gpu0")
    t.async_begin(lane, "request", 7, cat="request")
    t.span(gpu, "group", 0.0, 3.0, cat="group", id=21, parent=7)
    t.span(gpu, "task", 0.5, 2.5, cat="task", id=33, parent=21)
    t.async_end(lane, "request", 7, cat="request")
    return t


class TestFlowEvents:
    def test_parent_links_become_flow_pairs(self):
        rows = to_chrome(_linked())
        steps = [r for r in rows if r["ph"] == "s"]
        ends = [r for r in rows if r["ph"] == "f"]
        # Two parent edges -> two arrows, each one "s" plus one "f".
        assert len(steps) == 2
        assert len(ends) == 2
        assert all(r["cat"] == "flow" for r in steps + ends)
        assert {r["id"] for r in steps} == {r["id"] for r in ends}

    def test_flow_terminus_binds_enclosing(self):
        rows = to_chrome(_linked())
        assert all(r["bp"] == "e" for r in rows if r["ph"] == "f")

    def test_arrow_geometry_matches_the_spans(self):
        """Each "s" sits at the parent's anchor, each "f" at the child."""
        rows = to_chrome(_linked())
        group = next(r for r in rows if r["name"] == "group")
        task = next(r for r in rows if r["name"] == "task")
        by_id: dict[int, dict[str, dict]] = {}
        for r in rows:
            if r["ph"] in ("s", "f"):
                by_id.setdefault(r["id"], {})[r["ph"]] = r
        arrows = {
            (arrow["f"]["pid"], arrow["f"]["tid"], arrow["f"]["ts"]): arrow
            for arrow in by_id.values()
        }
        into_task = arrows[(task["pid"], task["tid"], task["ts"])]
        assert into_task["s"]["ts"] == group["ts"]
        assert into_task["s"]["tid"] == group["tid"]

    def test_dangling_parent_emits_no_arrow(self):
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "task", 0.0, 1.0, cat="task", id=5, parent=999)
        rows = to_chrome(t)
        assert not any(r["ph"] in ("s", "f") for r in rows)

    def test_validator_accepts_emitted_flows(self):
        assert validate_chrome_trace(to_chrome(_linked())) == []

    def test_validator_flags_unpaired_flow(self):
        bad = [
            {
                "name": "link",
                "cat": "flow",
                "ph": "s",
                "id": 1,
                "pid": 1,
                "tid": 1,
                "ts": 0.0,
            }
        ]
        assert any("expected one 's' and one 'f'" in p for p in validate_chrome_trace(bad))

    def test_validator_flags_flow_without_id(self):
        bad = [
            {"name": "link", "cat": "flow", "ph": "f", "pid": 1, "tid": 1, "ts": 0.0}
        ]
        assert any("flow event without id" in p for p in validate_chrome_trace(bad))

    def test_flow_round_trips_through_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _linked())
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        phases = [r["ph"] for r in doc["traceEvents"]]
        assert phases.count("s") == 2
        assert phases.count("f") == 2


class TestRenderers:
    def test_gantt_has_one_row_per_track(self):
        out = render_gantt(_traced())
        assert "node/gpu0" in out
        assert "service/lane.interactive" in out
        assert "#" in out

    def test_gantt_empty_trace(self):
        assert "no spans" in render_gantt(EventTracer(SimClock()))

    def test_summary_totals_by_category(self):
        out = render_summary(_traced())
        assert "task" in out
        assert "compute" in out


class TestGanttEdgeCases:
    def test_empty_tracer(self):
        assert render_gantt(EventTracer(SimClock())) == "(no spans recorded)"

    def test_only_non_span_events_counts_as_empty(self):
        t = EventTracer(SimClock())
        lane = t.track("service", "lane.interactive")
        t.instant(lane, "hit", cat="cache")
        t.counter(lane, "depth", 1)
        assert "no spans" in render_gantt(t)

    def test_all_zero_duration_spans(self):
        """Spans at t=0 with dur=0: t_max is 0, nothing to scale by."""
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "tick", 0.0, 0.0, cat="task")
        out = render_gantt(t)
        assert "zero-length trace" in out

    def test_zero_duration_span_amid_real_spans(self):
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "work", 0.0, 2.0, cat="task")
        t.span(gpu, "tick", 1.0, 1.0, cat="wait")  # zero-duration marker
        out = render_gantt(t)
        assert "node/gpu0" in out
        assert "#" in out  # the real span still renders

    def test_single_instant_track_alongside_span_track(self):
        """A track holding only a zero-duration span must keep its row
        without disturbing the busy column of the others."""
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        mark = t.track("node", "marks")
        t.span(gpu, "work", 0.0, 4.0, cat="task")
        t.span(mark, "pulse", 2.0, 2.0, cat="task")
        out = render_gantt(t)
        assert "node/gpu0" in out
        assert "node/marks" in out
        gpu_row = next(l for l in out.splitlines() if "node/gpu0" in l)
        assert "#" in gpu_row

    def test_gantt_zero_duration_does_not_crash_summary(self):
        t = EventTracer(SimClock())
        gpu = t.track("node", "gpu0")
        t.span(gpu, "tick", 0.0, 0.0, cat="task")
        out = render_summary(t)
        assert "task" in out
