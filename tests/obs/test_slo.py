"""SLO engine: rule lifecycle, burn rates, quantiles, zero overhead."""

import pytest

from repro.obs import Counter, Histogram, MetricsRegistry, Rule, RuleState, SLOEngine
from repro.service.broker import ServiceConfig, run_trace
from repro.service.loadgen import TrafficSpec, generate_trace


def _gauge_registry(value: float) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.gauge("depth", "h").set(value)
    return reg


class TestRuleValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            Rule(name="r", metric="m", op="!=", threshold=1.0)

    def test_negative_for_rejected(self):
        with pytest.raises(ValueError, match="for_s"):
            Rule(name="r", metric="m", op=">", threshold=1.0, for_s=-1.0)

    def test_quantile_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Rule(name="r", metric="m", op=">", threshold=1.0, quantile=1.5)

    def test_quantile_and_rate_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Rule(
                name="r", metric="m", op=">", threshold=1.0,
                quantile=0.95, rate_window_s=10.0,
            )

    def test_duplicate_rule_name_rejected(self):
        engine = SLOEngine()
        engine.add(Rule(name="r", metric="m", op=">", threshold=1.0))
        with pytest.raises(ValueError, match="already registered"):
            engine.add(Rule(name="r", metric="m", op="<", threshold=0.0))

    def test_describe_mentions_selector_and_window(self):
        rule = Rule(
            name="r", metric="m", op=">", threshold=2.0,
            labels={"lane": "interactive"}, for_s=1.0, quantile=0.95,
        )
        text = rule.describe()
        assert "quantile(0.95, m)" in text
        assert 'lane="interactive"' in text
        assert "for 1s" in text


class TestLifecycle:
    def test_pending_firing_resolved(self):
        """The acceptance scenario: breach -> pending -> firing -> resolved."""
        rule = Rule(name="depth", metric="depth", op=">", threshold=5.0, for_s=2.0)
        engine = SLOEngine((rule,))
        assert engine.state("depth") == RuleState.INACTIVE

        engine.sample(_gauge_registry(3.0), now=0.0)
        assert engine.state("depth") == RuleState.INACTIVE

        engine.sample(_gauge_registry(8.0), now=1.0)  # breach starts
        assert engine.state("depth") == RuleState.PENDING
        assert engine.firing() == []

        engine.sample(_gauge_registry(9.0), now=2.0)  # 1 s < for_s
        assert engine.state("depth") == RuleState.PENDING

        engine.sample(_gauge_registry(9.0), now=3.0)  # held for 2 s
        assert engine.state("depth") == RuleState.FIRING
        assert engine.firing() == ["depth"]

        engine.sample(_gauge_registry(2.0), now=4.0)  # spike drains
        assert engine.state("depth") == RuleState.INACTIVE
        assert [tr.to for tr in engine.transitions] == [
            RuleState.PENDING, RuleState.FIRING, RuleState.INACTIVE,
        ]
        assert len(engine.resolved()) == 1
        assert engine.resolved()[0].t == 4.0

    def test_for_zero_fires_immediately(self):
        engine = SLOEngine(
            (Rule(name="r", metric="depth", op=">=", threshold=1.0),)
        )
        engine.sample(_gauge_registry(1.0), now=0.0)
        assert engine.state("r") == RuleState.FIRING

    def test_breach_interrupted_before_for_never_fires(self):
        rule = Rule(name="r", metric="depth", op=">", threshold=5.0, for_s=2.0)
        engine = SLOEngine((rule,))
        engine.sample(_gauge_registry(8.0), now=0.0)
        engine.sample(_gauge_registry(1.0), now=1.0)  # recovers early
        engine.sample(_gauge_registry(8.0), now=1.5)  # breaches again
        engine.sample(_gauge_registry(8.0), now=3.0)  # only 1.5 s held
        assert engine.state("r") == RuleState.PENDING
        assert engine.firing() == []

    def test_report_lists_rules_and_transitions(self):
        rule = Rule(name="r", metric="depth", op=">", threshold=5.0)
        engine = SLOEngine((rule,))
        engine.sample(_gauge_registry(8.0), now=1.0)
        text = engine.report()
        assert "r" in text and "firing" in text
        assert "transitions" in text
        assert SLOEngine().report() == "(no SLO rules registered)"


class TestValueKinds:
    def test_quantile_rule_reads_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", ("lane",), buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.7, 3.5):
            h.observe(v, lane="a")
        rule = Rule(
            name="p95", metric="lat", op=">", threshold=2.0,
            labels={"lane": "a"}, quantile=0.95,
        )
        engine = SLOEngine((rule,))
        engine.sample(reg, now=0.0)
        assert engine.state("p95") == RuleState.FIRING

    def test_quantile_on_non_histogram_raises(self):
        reg = MetricsRegistry()
        reg.gauge("lat", "h").set(1.0)
        engine = SLOEngine(
            (Rule(name="r", metric="lat", op=">", threshold=0.0, quantile=0.5),)
        )
        with pytest.raises(TypeError, match="not a histogram"):
            engine.sample(reg, now=0.0)

    def test_burn_rate_over_trailing_window(self):
        rule = Rule(
            name="errors", metric="errors_total", op=">", threshold=2.0,
            rate_window_s=10.0,
        )
        engine = SLOEngine((rule,))

        def reg_at(total: float) -> MetricsRegistry:
            reg = MetricsRegistry()
            reg.counter("errors_total", "h").inc(total)
            return reg

        engine.sample(reg_at(0.0), now=0.0)   # first sample: no rate yet
        assert engine.state("errors") == RuleState.INACTIVE
        engine.sample(reg_at(10.0), now=2.0)  # 5/s over [0, 2]
        assert engine.state("errors") == RuleState.FIRING
        engine.sample(reg_at(11.0), now=12.0)  # window slides; rate ~0.1/s
        assert engine.state("errors") == RuleState.INACTIVE

    def test_burn_rate_on_non_counter_raises(self):
        reg = MetricsRegistry()
        reg.gauge("x", "h").set(1.0)
        engine = SLOEngine(
            (Rule(name="r", metric="x", op=">", threshold=0.0, rate_window_s=5.0),)
        )
        with pytest.raises(TypeError, match="not a counter"):
            engine.sample(reg, now=0.0)

    def test_missing_metric_raises_key_error(self):
        engine = SLOEngine(
            (Rule(name="r", metric="absent", op=">", threshold=0.0),)
        )
        with pytest.raises(KeyError):
            engine.sample(MetricsRegistry(), now=0.0)


class TestServiceIntegration:
    def test_load_spike_pending_firing_resolved(self):
        """A bursty trace overruns the queue objective, then drains."""
        trace = generate_trace(
            TrafficSpec(
                n_requests=40, seed=5, n_distinct=20, mean_interarrival_s=0.01
            )
        )
        engine = SLOEngine(
            (
                Rule(
                    name="queue-depth",
                    metric="repro_queue_depth",
                    op=">",
                    threshold=4.0,
                    for_s=0.1,
                ),
            )
        )
        config = ServiceConfig(n_service_workers=1, queue_capacity=32)
        broker, tickets = run_trace(trace, config, slo=engine)
        states = [tr.to for tr in engine.transitions]
        assert RuleState.PENDING in states
        assert RuleState.FIRING in states
        # The final batch drains the queue: the rule resolves.
        assert engine.state("queue-depth") == RuleState.INACTIVE
        assert len(engine.resolved()) >= 1
        assert all(t is not None and t.done for t in tickets)

    def test_no_rules_is_bit_identical_to_no_engine(self):
        """The zero-overhead path: an empty engine changes nothing."""
        trace = generate_trace(TrafficSpec(n_requests=16, seed=3, n_distinct=4))
        config = ServiceConfig(n_service_workers=1)
        bare, _ = run_trace(trace, config)
        empty_engine = SLOEngine()
        monitored, _ = run_trace(trace, config, slo=empty_engine)
        assert bare.report() == monitored.report()
        assert empty_engine.transitions == []

    def test_empty_engine_sample_never_touches_registry(self):
        class Exploding:
            def get(self, name):  # pragma: no cover - must not be called
                raise AssertionError("registry touched on the no-op path")

        SLOEngine().sample(Exploding(), now=0.0)


class _LegacySLOEngine(SLOEngine):
    """Reference evaluator: direct registry reads, pruned rate history.

    This reimplements the pre-query-engine ``_value`` semantics the
    engine shipped with before it was rewired onto the time-series
    store: plain rules read the registry snapshot directly, quantile
    rules call :meth:`Histogram.quantile`, and burn-rate rules keep a
    per-rule ``(t, total)`` history pruned to the trailing window.  The
    equivalence test below asserts the rewired engine reproduces this
    evaluator's transition sequence exactly.
    """

    def __init__(self, rules=()):
        super().__init__(rules)
        self._history: dict[str, list[tuple[float, float]]] = {}

    def _value(self, rule, registry, now):
        metric = registry.get(rule.metric)
        labels = dict(rule.labels)
        if rule.quantile is not None:
            if not isinstance(metric, Histogram):
                raise TypeError("not a histogram")
            return metric.quantile(rule.quantile, **labels)
        if rule.rate_window_s is not None:
            if not isinstance(metric, Counter):
                raise TypeError("not a counter")
            total = metric.value(**labels)
            history = self._history.setdefault(rule.name, [])
            history.append((now, total))
            horizon = now - rule.rate_window_s
            while len(history) > 1 and history[1][0] <= horizon:
                history.pop(0)
            t0, v0 = history[0]
            if now <= t0:
                return 0.0
            return (total - v0) / (now - t0)
        return metric.value(**labels)


class TestQueryEngineEquivalence:
    """The store-backed engine must be a drop-in for direct evaluation."""

    RULES = (
        Rule(
            name="interactive-p95",
            metric="repro_request_latency_seconds",
            labels={"lane": "interactive"},
            op=">",
            threshold=0.5,
            quantile=0.95,
            for_s=0.2,
        ),
        Rule(
            name="queue-depth",
            metric="repro_queue_depth",
            op=">",
            threshold=3.0,
            for_s=0.1,
        ),
        Rule(
            name="burn-rate",
            metric="repro_requests_total",
            labels={"lane": "survey", "outcome": "computed"},
            op=">",
            threshold=2.0,
            rate_window_s=2.0,
        ),
    )

    def _run(self, engine):
        trace = generate_trace(
            TrafficSpec(
                n_requests=40, seed=11, n_distinct=8, mean_interarrival_s=0.02
            )
        )
        run_trace(trace, ServiceConfig(n_service_workers=1), slo=engine)
        return [
            (tr.t, tr.rule, tr.frm, tr.to, tr.value) for tr in engine.transitions
        ]

    def test_transitions_match_legacy_evaluator_exactly(self):
        new = self._run(SLOEngine(self.RULES))
        legacy = self._run(_LegacySLOEngine(self.RULES))
        assert new == legacy
        assert new  # the trace must actually exercise transitions

    def test_values_match_on_synthetic_timeline(self):
        """Per-sample values, not just transitions, agree bit for bit."""
        new, old = SLOEngine(self.RULES), _LegacySLOEngine(self.RULES)
        for i in range(12):
            reg = MetricsRegistry()
            h = reg.histogram(
                "repro_request_latency_seconds", "h", ("lane",),
                buckets=(0.25, 0.5, 1.0, 2.0),
            )
            for j in range(i + 1):
                h.observe(0.1 * ((i + j) % 9), lane="interactive")
            reg.gauge("repro_queue_depth", "h").set(float((i * 3) % 5))
            reg.counter(
                "repro_requests_total", "h", ("lane", "outcome")
            ).inc(1.7 * i, lane="survey", outcome="computed")
            now = 0.3 * i
            new.sample(reg, now=now)
            old.sample(reg, now=now)
            for rule in self.RULES:
                assert new._states[rule.name].last_value == pytest.approx(
                    old._states[rule.name].last_value, abs=0.0
                ), (rule.name, i)
