"""Query engine: golden results over a canned store, parser errors."""

import pytest

from repro.obs import MetricsRegistry, QueryEngine, QueryError, TimeSeriesStore
from repro.obs.query import format_result, parse_query


def _canned_store() -> TimeSeriesStore:
    """Ten scrapes of a counter (5/s on lane a, 2/s on lane b), a sawing
    gauge, and a histogram filling one observation per scrape."""
    store = TimeSeriesStore()
    for i in range(10):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "h", ("lane",))
        c.inc(5.0 * i, lane="a")
        c.inc(2.0 * i, lane="b")
        reg.gauge("depth", "h").set(float(i % 4))
        h = reg.histogram("lat", "h", ("lane",), buckets=(1.0, 2.0, 4.0))
        for j in range(i):
            h.observe(0.5 + 0.4 * j, lane="a")
        store.scrape(reg, now=float(i))
    return store


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(_canned_store())


def _values(result) -> dict[tuple, float]:
    return {s.labels: s.value for s in result}


class TestInstantSelectors:
    def test_plain_selector_reads_newest(self, engine):
        got = _values(engine.query("reqs_total"))
        assert got[(("lane", "a"),)] == 45.0
        assert got[(("lane", "b"),)] == 18.0

    def test_at_reads_past_state(self, engine):
        got = _values(engine.query("reqs_total", at=4.0))
        assert got[(("lane", "a"),)] == 20.0

    def test_equality_matcher(self, engine):
        result = engine.query('reqs_total{lane="a"}')
        assert _values(result) == {(("lane", "a"),): 45.0}

    def test_negative_and_regex_matchers(self, engine):
        assert _values(engine.query('reqs_total{lane!="a"}')) == {
            (("lane", "b"),): 18.0
        }
        assert set(_values(engine.query('reqs_total{lane=~"a|b"}'))) == {
            (("lane", "a"),),
            (("lane", "b"),),
        }

    def test_unknown_series_is_empty_vector(self, engine):
        assert engine.query("absent_metric") == []
        assert format_result(engine.query("absent_metric")) == "(empty vector)"

    def test_empty_store_returns_empty(self):
        assert QueryEngine(TimeSeriesStore()).query("anything") == []


class TestRangeFunctions:
    def test_rate_is_windowed_delta_over_actual_span(self, engine):
        # Base point at t=5 (value 25), latest at t=9 (value 45).
        got = _values(engine.query('rate(reqs_total{lane="a"}[4s])'))
        assert got[(("lane", "a"),)] == (45.0 - 25.0) / 4.0

    def test_rate_window_past_history_uses_oldest(self, engine):
        got = _values(engine.query('rate(reqs_total{lane="b"}[1h])'))
        assert got[(("lane", "b"),)] == 18.0 / 9.0

    def test_increase(self, engine):
        got = _values(engine.query('increase(reqs_total{lane="a"}[2s])'))
        assert got[(("lane", "a"),)] == 10.0

    def test_over_time_family(self, engine):
        # depth cycles 0,1,2,3; window (5, 9] holds 2,3,0,1.
        q = lambda f: _values(engine.query(f"{f}(depth[4s])"))[()]
        assert q("avg_over_time") == 1.5
        assert q("max_over_time") == 3.0
        assert q("min_over_time") == 0.0
        assert q("sum_over_time") == 6.0
        assert q("count_over_time") == 4.0

    def test_duration_units(self, engine):
        ast = parse_query("rate(x[2m])")
        assert ast.args[0].window_s == 120.0
        assert parse_query("rate(x[500ms])").args[0].window_s == 0.5
        assert parse_query("rate(x[1h])").args[0].window_s == 3600.0


class TestHistogramQuantile:
    def test_matches_registry_estimator_exactly(self, engine):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", ("lane",), buckets=(1.0, 2.0, 4.0))
        for j in range(9):
            h.observe(0.5 + 0.4 * j, lane="a")
        for q in (0.5, 0.9, 0.95, 0.99):
            got = _values(
                engine.query(f"histogram_quantile({q}, lat_bucket)")
            )
            assert got[(("lane", "a"),)] == h.quantile(q, lane="a")

    def test_needs_le_labels(self, engine):
        with pytest.raises(QueryError, match="le"):
            engine.query("histogram_quantile(0.5, depth)")

    def test_scalar_second_arg_rejected(self, engine):
        with pytest.raises(QueryError, match="vector"):
            engine.query("histogram_quantile(0.5, 3)")


class TestBinaryOps:
    def test_scalar_arithmetic(self, engine):
        assert engine.query("2 + 3 * 4") == 14.0
        assert engine.query("(2 + 3) * 4") == 20.0

    def test_scalar_vector_broadcast(self, engine):
        got = _values(engine.query('reqs_total{lane="a"} / 9'))
        assert got[(("lane", "a"),)] == 5.0
        got = _values(engine.query('2 * reqs_total{lane="b"}'))
        assert got[(("lane", "b"),)] == 36.0

    def test_vector_vector_joins_on_identical_labels(self, engine):
        got = _values(engine.query("reqs_total / reqs_total"))
        assert got == {(("lane", "a"),): 1.0, (("lane", "b"),): 1.0}
        # Disjoint label sets do not join.
        assert engine.query('reqs_total{lane="a"} + reqs_total{lane="b"}') == []

    def test_division_by_zero_yields_zero(self, engine):
        assert engine.query("1 / 0") == 0.0


class TestParserErrors:
    @pytest.mark.parametrize(
        "expr",
        [
            "",
            "rate(depth)",  # range function without window
            "depth[5s]",  # bare range selector
            "rate(",
            'reqs_total{lane=}',
            "reqs_total{lane~\"a\"}",
            "1 +",
            "nope(depth[1s])",
        ],
    )
    def test_bad_expressions_raise_query_error(self, engine, expr):
        with pytest.raises(QueryError):
            engine.query(expr)

    def test_query_error_is_value_error(self):
        assert issubclass(QueryError, ValueError)

    def test_ast_cache_reuses_parse(self, engine):
        a = engine.compile("depth")
        assert engine.compile("depth") is a
