"""Causal cost attribution: exact conservation, backend invariance, model.

The load-bearing claims:

- every measured span an attributed run records is split back onto
  request ledger entries whose tick sums equal the measured totals
  **exactly** (integer arithmetic — zero tolerance);
- the ledger is bit-identical across execution backends (serial,
  thread, process) and with continuous batching off, because it is a
  pure function of the virtual-time span stream;
- every gpusim kernel sub-span is reachable from exactly one request
  root through parent edges;
- the online cost model predicts, observes, serializes, and round-trips.
"""

import json

import pytest

from repro.obs import EventTracer, kernel_root_map
from repro.obs.attribution import (
    COMPONENTS,
    TICKS_PER_S,
    Attribution,
    CostModel,
    _split_ticks,
    ion_from_label,
    width_bucket,
)
from repro.service.broker import ServiceConfig, run_trace
from repro.service.loadgen import TrafficSpec, generate_trace

TRACE = generate_trace(
    TrafficSpec(n_requests=24, seed=11, n_distinct=8, burst=4)
)


def attributed_run(**over):
    cfg = ServiceConfig(n_service_workers=2, **over)
    tracer = EventTracer()
    broker, tickets = run_trace(TRACE, cfg, tracer=tracer)
    return broker, tickets, tracer


def ledger_fingerprint(result) -> str:
    """Canonical JSON of the integer-tick ledger — bit-exact comparable."""
    return json.dumps(
        [
            (e.trace_id, e.lane, e.outcome, e.leader, sorted(e.ticks.items()))
            for e in result.entries
        ]
        + [sorted(result.measured_ticks.items())]
        + [sorted(result.attributed_ticks.items())],
        sort_keys=True,
    )


class TestSplitTicks:
    def test_conserves_exactly(self):
        weights = [3.0, 1.0, 1.0, 2.5]
        for total in (0, 1, 7, 999_999_999_999, 10**15 + 3):
            shares = _split_ticks(total, weights)
            assert sum(shares) == total
            assert all(s >= 0 for s in shares)

    def test_single_member_takes_all(self):
        assert _split_ticks(12345, [7.0]) == [12345]

    def test_deterministic_tie_break_by_index(self):
        # Equal weights, total not divisible: earlier members get the
        # remainder ticks.
        assert _split_ticks(5, [1.0, 1.0, 1.0]) == [2, 2, 1]
        assert _split_ticks(5, [1.0, 1.0, 1.0]) == [2, 2, 1]

    def test_proportional(self):
        shares = _split_ticks(1000, [3.0, 1.0])
        assert shares == [750, 250]


class TestLabels:
    def test_ion_from_label(self):
        assert ion_from_label("req3/O+7") == "O+7"
        assert ion_from_label("grp0/Fe+13x4") == "Fe+13"
        assert ion_from_label("bare") == "bare"

    def test_width_bucket(self):
        assert width_bucket(0) == 0
        assert width_bucket(1) == 1
        assert width_bucket(1024) == 11


class TestConservation:
    @pytest.fixture(scope="class")
    def run(self):
        return attributed_run(
            batch_max=8, batch_width_max=8, batch_window_s=0.05
        )

    def test_attributed_equals_measured_exactly(self, run):
        broker, _tickets, _tracer = run
        result = broker.cost_report()
        for comp in COMPONENTS:
            assert result.attributed_ticks[comp] == result.measured_ticks[comp]
        assert result.conservation == 1.0

    def test_entry_sums_equal_measured(self, run):
        broker, _tickets, _tracer = run
        result = broker.cost_report()
        for comp in COMPONENTS:
            total = sum(e.ticks[comp] for e in result.entries)
            assert total == result.measured_ticks[comp]

    def test_measured_matches_span_stream(self, run):
        """The measured totals are exactly the rounded span durations."""
        broker, _tickets, tracer = run
        result = broker.cost_report()
        cats = {"compute": "compute", "ingress": "transfer", "egress": "transfer", "wait": "wait"}
        expected = {c: 0 for c in COMPONENTS}
        for ev in tracer.events:
            if ev.ph == "X" and ev.cat in cats:
                expected[cats[ev.cat]] += int(round(ev.dur * TICKS_PER_S))
            elif ev.ph == "X" and ev.cat == "task" and ev.args.get("placement") == "cpu":
                expected["compute"] += int(round(ev.dur * TICKS_PER_S))
        assert result.measured_ticks == expected

    def test_every_kernel_span_rooted(self, run):
        _broker, _tickets, tracer = run
        roots = kernel_root_map(tracer)
        assert roots
        assert all(root is not None for _idx, root in roots)

    def test_every_completed_request_has_an_entry(self, run):
        broker, tickets, _tracer = run
        result = broker.cost_report()
        ids = {e.trace_id for e in result.entries}
        for ticket in tickets:
            if ticket is not None and ticket.done:
                assert ticket.trace_id in ids


class TestBackendInvariance:
    """The ledger is a pure function of virtual time — backends and
    batching mode change wall-clock execution, never the attributed
    ticks of the *same* dispatch schedule."""

    def test_bit_identical_across_backends(self):
        fingerprints = {}
        for backend in ("serial", "thread", "process"):
            broker, _tickets, _tracer = attributed_run(
                backend=backend,
                jobs=2,
                batch_max=8,
                batch_width_max=8,
                batch_window_s=0.05,
            )
            result = broker.cost_report()
            assert result.conservation == 1.0
            fingerprints[backend] = ledger_fingerprint(result)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_batching_off_still_conserves(self):
        broker, _tickets, tracer = attributed_run()  # no batch window
        result = broker.cost_report()
        assert result.conservation == 1.0
        for comp in COMPONENTS:
            assert result.attributed_ticks[comp] == result.measured_ticks[comp]
        roots = kernel_root_map(tracer)
        assert roots and all(r is not None for _i, r in roots)

    def test_batching_off_deterministic(self):
        a = ledger_fingerprint(attributed_run()[0].cost_report())
        b = ledger_fingerprint(attributed_run()[0].cost_report())
        assert a == b


class TestZeroCostOutcomes:
    def test_cache_hit_recorded_at_zero_cost(self):
        from repro.cluster.simclock import SimClock
        from repro.service.broker import SpectrumBroker
        from repro.service.requests import SpectrumRequest

        clock = SimClock()
        tracer = EventTracer(clock)
        broker = SpectrumBroker(clock, ServiceConfig(), tracer=tracer)
        broker.start()
        request = SpectrumRequest(temperature_k=1.0e7, z_max=4, n_bins=16)
        first = broker.submit(request)
        clock.run()
        second = broker.submit(request)
        assert second.cached
        result = broker.cost_report()
        by_id = {e.trace_id: e for e in result.entries}
        hit = by_id[second.trace_id]
        assert hit.outcome == "cache_hit"
        assert sum(hit.ticks.values()) == 0
        # The leader that actually computed carries the cost.
        assert sum(by_id[first.trace_id].ticks.values()) > 0


class TestCostModel:
    def test_prior_prediction(self):
        model = CostModel(prior_overhead_s=0.5, prior_eval_rate=100.0)
        assert model.predict("O+7", "simpson", 200) == 0.5 + 2.0

    def test_observe_then_predict(self):
        model = CostModel(alpha=0.5, prior_overhead_s=0.0, prior_eval_rate=1.0)
        model.observe("O+7", "simpson", 100, 3.0)
        assert model.predict("O+7", "simpson", 100) == 3.0
        # Same width bucket -> same key; EWMA pulls halfway.
        model.observe("O+7", "simpson", 100, 5.0)
        assert model.predict("O+7", "simpson", 100) == 4.0

    def test_error_tracked_before_update(self):
        model = CostModel(prior_overhead_s=0.0, prior_eval_rate=1.0)
        model.observe("X", "m", 10, 20.0)  # predicted 10 -> |rel err| 0.5
        assert model.n_observations == 1
        assert model.mean_abs_rel_error == pytest.approx(0.5)

    def test_round_trip(self):
        model = CostModel(alpha=0.3, prior_overhead_s=0.1, prior_eval_rate=2.0)
        model.observe("O+7", "simpson", 64, 1.5)
        model.observe("Fe+13", "romberg", 4096, 9.0)
        clone = CostModel.from_dict(json.loads(json.dumps(model.to_dict())))
        assert clone.to_dict() == model.to_dict()
        assert clone.predict("O+7", "simpson", 64) == model.predict(
            "O+7", "simpson", 64
        )
        assert clone.mean_abs_rel_error == model.mean_abs_rel_error

    def test_seeded_from_counters(self):
        from repro.gpusim.device import TESLA_C2075

        model = CostModel.seeded_from_counters(TESLA_C2075)
        expected = (
            TESLA_C2075.context_switch_s
            + TESLA_C2075.kernel_launch_s
            + 2.0 * TESLA_C2075.pcie_latency_s
        )
        assert model.prior_overhead_s == expected
        assert model.prior_eval_rate == TESLA_C2075.eval_rate
        assert isinstance(model.seeded_from, dict)

    def test_online_model_learns_the_service(self):
        broker, _tickets, _tracer = attributed_run(
            batch_max=8, batch_width_max=8, batch_window_s=0.05
        )
        broker.cost_report()
        model = broker.cost_model
        assert model.n_keys > 0
        assert model.n_observations > 0
        # The device sim is deterministic: after seeding, the EWMA's
        # prediction error collapses to near zero.
        assert model.mean_abs_rel_error < 0.05


class TestStandaloneSpans:
    def test_orphan_spans_are_unattributed_not_lost(self):
        """Spans with no causal chain are booked, never silently dropped."""
        tracer = EventTracer()
        t = tracer.track("proc", "thread")
        tracer.span(t, "standalone", 0.0, 0.25, cat="compute")
        ledger = Attribution(tracer)
        ledger.ingest()
        result = ledger.result()
        assert result.entries == []
        assert result.attributed_ticks["compute"] == 0
        assert result.unattributed_ticks["compute"] == int(
            round(0.25 * TICKS_PER_S)
        )
