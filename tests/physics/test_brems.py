"""Free-free continuum."""

import numpy as np
import pytest

from repro.physics.apec import GridPoint
from repro.physics.brems import brems_emissivity, brems_spectral_density, gaunt_ff
from repro.physics.spectrum import EnergyGrid


class TestGauntFF:
    def test_order_unity(self):
        g = gaunt_ff(np.logspace(-2, 1, 50), kt_kev=1.0)
        assert np.all(g >= 0.2)
        assert np.all(g < 10.0)

    def test_larger_for_soft_photons(self):
        g_soft = gaunt_ff(np.array([0.01]), 1.0)[0]
        g_hard = gaunt_ff(np.array([5.0]), 1.0)[0]
        assert g_soft > g_hard

    def test_floor_at_high_energy(self):
        assert gaunt_ff(np.array([100.0]), 1.0)[0] == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaunt_ff(np.array([1.0]), 0.0)


class TestBremsSpectralDensity:
    def test_exponential_cutoff(self):
        pt = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        kt = pt.kt_kev
        e = np.array([0.5, 0.5 + 3.0 * kt])
        d = brems_spectral_density(e, pt, z_max=8)
        # Beyond the gaunt variation, the drop is ~exp(-3).
        assert d[1] / d[0] < np.exp(-2.0)

    def test_density_squared(self):
        e = np.array([1.0])
        d1 = brems_spectral_density(e, GridPoint(temperature_k=1e7, ne_cm3=1.0), z_max=8)
        d2 = brems_spectral_density(e, GridPoint(temperature_k=1e7, ne_cm3=2.0), z_max=8)
        assert d2[0] / d1[0] == pytest.approx(4.0, rel=1e-6)

    def test_hotter_plasma_harder_spectrum(self):
        e = np.array([2.0])
        cool = brems_spectral_density(e, GridPoint(temperature_k=5e6, ne_cm3=1.0), z_max=8)
        hot = brems_spectral_density(e, GridPoint(temperature_k=5e7, ne_cm3=1.0), z_max=8)
        assert hot[0] > cool[0]

    def test_positive_everywhere(self):
        pt = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        d = brems_spectral_density(np.logspace(-2, 1, 40), pt, z_max=8)
        assert np.all(d > 0.0)


class TestBremsEmissivity:
    def test_bin_additivity(self):
        pt = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        fine = EnergyGrid.linear(0.3, 1.3, 50)
        coarse = EnergyGrid.linear(0.3, 1.3, 5)
        e_fine = brems_emissivity(fine, pt, z_max=8)
        e_coarse = brems_emissivity(coarse, pt, z_max=8)
        assert e_fine.sum() == pytest.approx(e_coarse.sum(), rel=1e-9)

    def test_smooth_continuum(self):
        """No edges: adjacent bins differ only gradually."""
        pt = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        grid = EnergyGrid.linear(0.3, 1.3, 100)
        e = brems_emissivity(grid, pt, z_max=8)
        ratios = e[1:] / e[:-1]
        assert np.all(ratios > 0.9)
        assert np.all(ratios < 1.1)
