"""Active-window construction and its accuracy budget.

The windows module promises that dropping everything outside
``[first_bin(I_l), cutoff_bin(I_l + tau)]`` discards at most ``tail_tol``
of a level's total above-edge emission.  These tests pin that promise
against the closed-form tail mass (:func:`analytic_bin_integral`).
"""

import numpy as np
import pytest

from repro.physics.rrc import RRCLevelParams, analytic_bin_integral, gaunt_factor
from repro.physics.spectrum import EnergyGrid
from repro.physics.windows import (
    GAUNT_SUP,
    LevelWindows,
    gaunt_range_bounds,
    level_windows,
    tail_cutoff_kev,
)


class TestGauntBounds:
    def test_sup_bounds_dense_sample(self):
        # The factor peaks near x ~ 4.9 at ~1.0249; GAUNT_SUP must cover
        # it everywhere, with a margin small enough to stay a useful bound.
        x = np.geomspace(1.0, 1e6, 200_001)
        g = gaunt_factor(x)
        assert float(g.max()) < GAUNT_SUP
        assert float(g.max()) > 1.02

    def test_range_bounds_unimodal_endpoints(self):
        # Infimum over [1, x_max] sits at an endpoint of the interval.
        for x_max in (1.0, 2.0, 4.9, 50.0, 1e4):
            g_inf, g_sup = gaunt_range_bounds(x_max)
            x = np.linspace(1.0, x_max, 50_001)
            g = gaunt_factor(x)
            assert g_inf <= float(g.min()) + 1e-12
            assert g_sup >= float(g.max())

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            gaunt_range_bounds(0.5)


class TestTailCutoff:
    def test_zero_tol_disables(self):
        assert tail_cutoff_kev(1.0, 0.0) == np.inf

    def test_no_gaunt_closed_form(self):
        kt = 0.8617
        tol = 1e-9
        assert tail_cutoff_kev(kt, tol, gaunt=False) == pytest.approx(
            kt * np.log(1.0 / tol)
        )

    def test_gaunt_widens_cutoff(self):
        plain = tail_cutoff_kev(1.0, 1e-9, gaunt=False)
        wide = tail_cutoff_kev(1.0, 1e-9, gaunt=True, x_max=100.0)
        assert wide > plain

    def test_monotone_in_tolerance(self):
        taus = [tail_cutoff_kev(1.0, t) for t in (1e-3, 1e-6, 1e-9, 1e-12)]
        assert taus == sorted(taus)

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_cutoff_kev(0.0, 1e-9)
        with pytest.raises(ValueError):
            tail_cutoff_kev(1.0, -1e-9)


class TestLevelWindows:
    def test_below_edge_bins_excluded(self):
        grid = EnergyGrid.linear(0.1, 10.1, 100)  # 0.1 keV bins
        win = level_windows(np.array([2.05]), grid, 1.0, 0.0, gaunt=False)
        # Bin 19 spans [2.0, 2.1] and straddles the edge -> first active.
        assert win.first[0] == 19
        assert win.cutoff[0] == grid.n_bins

    def test_zero_tol_keeps_everything_above_edge(self):
        grid = EnergyGrid.linear(0.1, 10.0, 50)
        win = level_windows(np.array([1.0, 5.0]), grid, 0.5, 0.0)
        assert np.isinf(win.tau_kev)
        assert (win.cutoff == grid.n_bins).all()
        assert (win.dropped_mass_per_c == 0.0).all()

    def test_edge_above_grid_gives_empty_window(self):
        grid = EnergyGrid.linear(0.1, 1.0, 10)
        win = level_windows(np.array([5.0]), grid, 1.0, 1e-9)
        assert win.first[0] == win.cutoff[0]
        assert win.n_active == 0

    def test_counts_and_totals(self):
        grid = EnergyGrid.linear(0.1, 10.0, 100)
        win = level_windows(np.array([1.0, 3.0, 20.0]), grid, 1.0, 0.0)
        assert win.n_levels == 3
        assert win.n_total == 300
        assert win.n_active == int((win.cutoff - win.first).sum())
        assert win.n_active < win.n_total

    def test_tail_mass_bound_pins_analytic_integral(self):
        # Sum the *exact* per-bin masses beyond the cutoff and check the
        # reported bound covers them (gaunt=False: the bound is the exact
        # analytic tail from the first dropped bin's lower edge).
        kt = 0.25
        edge = 1.3
        params = RRCLevelParams(
            binding_kev=edge,
            n=2,
            c_eff=3.0,
            g_level=8.0,
            kt_kev=kt,
            ne_cm3=1.0,
            n_ion_cm3=1.0,
        )
        grid = EnergyGrid.linear(0.1, 40.0, 400)
        win = level_windows(np.array([edge]), grid, kt, 1e-6, gaunt=False)
        cut = int(win.cutoff[0])
        assert cut < grid.n_bins  # the cutoff must bind for this test
        dropped_exact = sum(
            analytic_bin_integral(grid.lower[b], grid.upper[b], params)
            for b in range(cut, grid.n_bins)
        )
        # Normalize out the flat constant C: analytic_bin_integral over
        # the whole axis equals C * kT for the gaunt-free integrand.
        c_flat = analytic_bin_integral(0.0, 1.0e6, params) / kt
        bound = float(win.dropped_mass_bound(np.array([c_flat]))[0])
        analytic_tail = c_flat * kt * np.exp(-(grid.lower[cut] - edge) / kt)
        assert bound == pytest.approx(analytic_tail, rel=1e-12)
        assert dropped_exact <= bound * (1.0 + 1e-12)
        # ... and the budget holds: dropped <= tail_tol * total mass C*kT.
        assert dropped_exact <= 1e-6 * c_flat * kt

    def test_tail_mass_bound_scales_with_constants(self):
        grid = EnergyGrid.linear(0.1, 30.0, 300)
        win = level_windows(np.array([1.0, 2.0]), grid, 0.3, 1e-6)
        c_l = np.array([2.0, 5.0])
        assert np.allclose(
            win.dropped_mass_bound(c_l), c_l * win.dropped_mass_per_c
        )
        with pytest.raises(ValueError):
            win.dropped_mass_bound(np.array([1.0]))

    def test_empty_levels(self):
        grid = EnergyGrid.linear(0.1, 1.0, 4)
        win = level_windows(np.zeros(0), grid, 1.0, 1e-9)
        assert win.n_levels == 0
        assert win.n_active == 0

    def test_validation(self):
        grid = EnergyGrid.linear(0.1, 1.0, 4)
        with pytest.raises(ValueError):
            level_windows(np.array([-1.0]), grid, 1.0, 1e-9)
        with pytest.raises(ValueError):
            level_windows(np.array([[1.0]]), grid, 1.0, 1e-9)
        with pytest.raises(ValueError):
            level_windows(np.array([1.0]), grid, 1.0, -0.5)

    def test_frozen(self):
        grid = EnergyGrid.linear(0.1, 1.0, 4)
        win = level_windows(np.array([0.5]), grid, 1.0, 1e-9)
        assert isinstance(win, LevelWindows)
        with pytest.raises(Exception):
            win.tau_kev = 0.0
