"""Energy grids and Spectrum algebra."""

import numpy as np
import pytest

from repro.constants import HC_KEV_ANGSTROM
from repro.physics.spectrum import EnergyGrid, Spectrum


class TestEnergyGrid:
    def test_linear_grid(self):
        g = EnergyGrid.linear(0.5, 2.5, 4)
        assert g.n_bins == 4
        assert np.allclose(g.widths, 0.5)
        assert np.allclose(g.centers, [0.75, 1.25, 1.75, 2.25])

    def test_from_wavelength_window(self):
        g = EnergyGrid.from_wavelength(10.0, 45.0, 100)
        assert g.n_bins == 100
        assert g.edges[0] == pytest.approx(HC_KEV_ANGSTROM / 45.0)
        assert g.edges[-1] == pytest.approx(HC_KEV_ANGSTROM / 10.0)
        assert np.all(np.diff(g.edges) > 0.0)

    def test_wavelength_centers_within_window(self):
        g = EnergyGrid.from_wavelength(10.0, 45.0, 50)
        wl = g.wavelength_centers
        assert np.all((wl > 10.0) & (wl < 45.0))

    @pytest.mark.parametrize(
        "edges",
        [[1.0], [1.0, 1.0], [2.0, 1.0], [-1.0, 1.0], [0.0, 1.0]],
    )
    def test_invalid_edges(self, edges):
        with pytest.raises(ValueError):
            EnergyGrid(np.array(edges, dtype=float))

    def test_edges_frozen(self):
        g = EnergyGrid.linear(1.0, 2.0, 4)
        with pytest.raises(ValueError):
            g.edges[0] = 0.5

    @pytest.mark.parametrize("n_bins", [0, -1])
    def test_linear_needs_bins(self, n_bins):
        with pytest.raises(ValueError):
            EnergyGrid.linear(1.0, 2.0, n_bins)

    def test_wavelength_window_validation(self):
        with pytest.raises(ValueError):
            EnergyGrid.from_wavelength(45.0, 10.0, 10)


class TestSpectrum:
    def test_zeros_and_accumulate(self):
        g = EnergyGrid.linear(1.0, 2.0, 5)
        s = Spectrum.zeros(g, temperature_k=1e7)
        s.accumulate(np.ones(5))
        s.accumulate(np.full(5, 2.0))
        assert np.allclose(s.values, 3.0)
        assert s.meta["temperature_k"] == 1e7

    def test_shape_mismatch_rejected(self):
        g = EnergyGrid.linear(1.0, 2.0, 5)
        with pytest.raises(ValueError):
            Spectrum(grid=g, values=np.ones(4))
        s = Spectrum.zeros(g)
        with pytest.raises(ValueError):
            s.accumulate(np.ones(4))

    def test_addition(self):
        g = EnergyGrid.linear(1.0, 2.0, 3)
        a = Spectrum(grid=g, values=np.array([1.0, 2.0, 3.0]))
        b = Spectrum(grid=g, values=np.array([0.5, 0.5, 0.5]))
        c = a + b
        assert np.allclose(c.values, [1.5, 2.5, 3.5])
        a += b
        assert np.allclose(a.values, c.values)

    def test_addition_keeps_left_meta(self):
        # Regression: __add__ used to drop meta while __iadd__ kept it.
        g = EnergyGrid.linear(1.0, 2.0, 3)
        a = Spectrum.zeros(g, temperature_k=1e7, tag="left")
        b = Spectrum.zeros(g, tag="right")
        c = a + b
        assert c.meta == {"temperature_k": 1e7, "tag": "left"}
        # ... and the result's meta is a copy, not a shared dict.
        c.meta["tag"] = "mutated"
        assert a.meta["tag"] == "left"
        a += b
        assert a.meta["tag"] == "left"

    def test_cross_grid_addition_rejected(self):
        a = Spectrum.zeros(EnergyGrid.linear(1.0, 2.0, 3))
        b = Spectrum.zeros(EnergyGrid.linear(1.0, 3.0, 3))
        with pytest.raises(ValueError):
            _ = a + b

    def test_normalized_peak_is_one(self):
        g = EnergyGrid.linear(1.0, 2.0, 4)
        s = Spectrum(grid=g, values=np.array([1.0, 4.0, 2.0, 0.5]))
        n = s.normalized()
        assert n.values.max() == pytest.approx(1.0)
        assert np.allclose(n.values, s.values / 4.0)
        # original untouched
        assert s.values.max() == 4.0

    def test_normalized_zero_spectrum(self):
        s = Spectrum.zeros(EnergyGrid.linear(1.0, 2.0, 4))
        assert np.all(s.normalized().values == 0.0)

    def test_total(self):
        g = EnergyGrid.linear(1.0, 2.0, 4)
        s = Spectrum(grid=g, values=np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.total() == 10.0

    def test_relative_error_percent(self):
        g = EnergyGrid.linear(1.0, 2.0, 4)
        ref = Spectrum(grid=g, values=np.array([1.0, 2.0, 0.0, 4.0]))
        got = Spectrum(grid=g, values=np.array([1.01, 2.0, 0.0, 3.8]))
        err = got.relative_error_percent(ref)
        assert err[0] == pytest.approx(1.0)
        assert err[1] == 0.0
        assert err[2] == 0.0  # both zero -> agreement
        assert err[3] == pytest.approx(-5.0)

    def test_relative_error_nan_for_disagreeing_zero_reference(self):
        g = EnergyGrid.linear(1.0, 2.0, 2)
        ref = Spectrum(grid=g, values=np.array([0.0, 1.0]))
        got = Spectrum(grid=g, values=np.array([0.5, 1.0]))
        err = got.relative_error_percent(ref)
        assert np.isnan(err[0])


class TestSpectrumOps:
    def _spec(self, n=12):
        g = EnergyGrid.linear(1.0, 2.2, n)
        return Spectrum(grid=g, values=np.arange(1.0, n + 1.0))

    def test_rebin_conserves_flux(self):
        s = self._spec(12)
        r = s.rebin(3)
        assert r.grid.n_bins == 4
        assert r.total() == pytest.approx(s.total())
        assert np.allclose(r.values, [1 + 2 + 3, 4 + 5 + 6, 7 + 8 + 9, 10 + 11 + 12])

    def test_rebin_identity(self):
        s = self._spec(6)
        r = s.rebin(1)
        assert np.array_equal(r.values, s.values)

    def test_rebin_validation(self):
        s = self._spec(12)
        with pytest.raises(ValueError):
            s.rebin(0)
        with pytest.raises(ValueError):
            s.rebin(5)  # 12 % 5 != 0

    def test_slice_energy_whole_bins(self):
        s = self._spec(12)  # edges 1.0 .. 2.2 step 0.1
        sub = s.slice_energy(1.2, 1.6)
        assert sub.grid.edges[0] == pytest.approx(1.2)
        assert sub.grid.edges[-1] == pytest.approx(1.6)
        assert np.allclose(sub.values, [3.0, 4.0, 5.0, 6.0])

    def test_slice_energy_validation(self):
        s = self._spec(12)
        with pytest.raises(ValueError):
            s.slice_energy(2.0, 1.0)
        with pytest.raises(ValueError):
            s.slice_energy(5.0, 6.0)  # outside the grid

    def test_slice_wavelength_roundtrip(self):
        from repro.constants import HC_KEV_ANGSTROM

        g = EnergyGrid.from_wavelength(10.0, 45.0, 70)
        s = Spectrum(grid=g, values=np.ones(70))
        sub = s.slice_wavelength(15.0, 30.0)
        wl = sub.grid.wavelength_centers
        assert wl.min() >= 15.0 - 1.0  # whole-bin slack
        assert wl.max() <= 30.0 + 1.0
        assert sub.total() < s.total()

    def test_slice_preserves_meta(self):
        s = self._spec(12)
        s.meta["tag"] = "x"
        assert s.slice_energy(1.2, 1.6).meta["tag"] == "x"
        assert s.rebin(3).meta["tag"] == "x"
