"""The serial APEC calculator and the batched/scalar path agreement."""

import numpy as np
import pytest

from repro.atomic.ions import Ion
from repro.physics.apec import (
    GridPoint,
    SerialAPEC,
    ion_emissivity_batched,
    ion_emissivity_scalar,
    level_params_for,
)


@pytest.fixture()
def oxygen_h_like(tiny_db):
    return [i for i in tiny_db.ions if i.name == "O+7"][0]


class TestGridPoint:
    def test_kt(self):
        pt = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        assert pt.kt_kev == pytest.approx(0.8617, rel=1e-3)

    @pytest.mark.parametrize("kwargs", [dict(temperature_k=0.0, ne_cm3=1.0), dict(temperature_k=1e6, ne_cm3=-1.0)])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GridPoint(**kwargs)


class TestLevelParams:
    def test_params_match_database(self, tiny_db, hot_point, oxygen_h_like):
        ls = tiny_db.levels(oxygen_h_like)
        p = level_params_for(tiny_db, oxygen_h_like, 0, hot_point)
        assert p.binding_kev == pytest.approx(float(ls.energy_kev[0]))
        assert p.n == int(ls.n_arr[0])
        assert p.kt_kev == hot_point.kt_kev


class TestPathAgreement:
    def test_batched_simpson_matches_qags(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        batched = ion_emissivity_batched(tiny_db, oxygen_h_like, hot_point, grid_small)
        scalar = ion_emissivity_scalar(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="qags"
        )
        nz = scalar != 0.0
        assert nz.any()
        rel = np.abs((batched[nz] - scalar[nz]) / scalar[nz])
        assert rel.max() < 1e-10

    def test_batched_romberg_matches_qags(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        batched = ion_emissivity_batched(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="romberg", k=7
        )
        scalar = ion_emissivity_scalar(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="qags"
        )
        nz = scalar != 0.0
        rel = np.abs((batched[nz] - scalar[nz]) / scalar[nz])
        assert rel.max() < 1e-9

    def test_scalar_simpson_matches_batched(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        scalar = ion_emissivity_scalar(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="simpson"
        )
        batched = ion_emissivity_batched(tiny_db, oxygen_h_like, hot_point, grid_small)
        nz = batched != 0.0
        assert np.allclose(scalar[nz], batched[nz], rtol=1e-12)

    def test_unknown_methods_rejected(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        with pytest.raises(ValueError):
            ion_emissivity_batched(
                tiny_db, oxygen_h_like, hot_point, grid_small, method="magic"
            )
        with pytest.raises(ValueError):
            ion_emissivity_scalar(
                tiny_db, oxygen_h_like, hot_point, grid_small, method="magic"
            )


class TestEmissivityPhysics:
    def test_exponential_suppression_far_above_edges(
        self, tiny_db, hot_point, oxygen_h_like
    ):
        """Many kT above the last edge the emission is exp-suppressed."""
        from repro.physics.spectrum import EnergyGrid

        ls = tiny_db.levels(oxygen_h_like)
        top_edge = float(ls.energy_kev.max())
        kt = hot_point.kt_kev
        width = 0.2  # keV, same width for both windows
        near = EnergyGrid.linear(top_edge, top_edge + width, 10)
        far = EnergyGrid.linear(top_edge + 30.0 * kt, top_edge + 30.0 * kt + width, 10)
        e_near = ion_emissivity_batched(tiny_db, oxygen_h_like, hot_point, near)
        e_far = ion_emissivity_batched(tiny_db, oxygen_h_like, hot_point, far)
        assert e_far.max() < e_near.max() * 1e-9

    def test_emissivity_scales_with_density_squared(self, tiny_db, grid_small, oxygen_h_like):
        p1 = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        p2 = GridPoint(temperature_k=1e7, ne_cm3=2.0)
        e1 = ion_emissivity_batched(tiny_db, oxygen_h_like, p1, grid_small)
        e2 = ion_emissivity_batched(tiny_db, oxygen_h_like, p2, grid_small)
        nz = e1 != 0.0
        # n_e * n_ion ~ n_e^2 at fixed T.
        assert np.allclose(e2[nz] / e1[nz], 4.0, rtol=1e-10)

    def test_nonnegative(self, tiny_db, hot_point, grid_small):
        for ion in tiny_db.ions[::7]:
            out = ion_emissivity_batched(tiny_db, ion, hot_point, grid_small)
            assert np.all(out >= 0.0)


class TestSerialAPEC:
    def test_full_spectrum_accumulates_ions(self, tiny_db, hot_point, grid_small):
        apec = SerialAPEC(tiny_db, grid_small, method="simpson-batch")
        full = apec.compute(hot_point)
        partial = apec.compute(hot_point, ions=tiny_db.ions[:5])
        assert full.total() >= partial.total() > 0.0

    def test_spectrum_metadata(self, tiny_db, hot_point, grid_small):
        apec = SerialAPEC(tiny_db, grid_small, method="simpson-batch")
        spec = apec.compute(hot_point, ions=tiny_db.ions[:2])
        assert spec.meta["temperature_k"] == hot_point.temperature_k

    def test_unknown_method_rejected(self, tiny_db, grid_small):
        with pytest.raises(ValueError):
            SerialAPEC(tiny_db, grid_small, method="nope")

    def test_qags_reference_agrees_with_batch(self, tiny_db, hot_point):
        """End-to-end Fig. 7 style check at miniature scale."""
        from repro.physics.spectrum import EnergyGrid

        grid = EnergyGrid.from_wavelength(15.0, 40.0, 12)
        ions = tiny_db.ions[20:26]
        ref = SerialAPEC(tiny_db, grid, method="qags").compute(hot_point, ions=ions)
        fast = SerialAPEC(tiny_db, grid, method="simpson-batch").compute(
            hot_point, ions=ions
        )
        err = fast.relative_error_percent(ref)
        err = err[np.isfinite(err)]
        assert np.abs(err).max() < 1e-6  # percent


class TestGaussKernel:
    def test_gauss_matches_qags(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        gauss = ion_emissivity_batched(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="gauss"
        )
        scalar = ion_emissivity_scalar(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="qags"
        )
        nz = scalar != 0.0
        rel = np.abs((gauss[nz] - scalar[nz]) / scalar[nz])
        assert rel.max() < 1e-12

    def test_gauss_cheaper_than_simpson_per_accuracy(self, tiny_db, hot_point, grid_small, oxygen_h_like):
        """12 Gauss points beat 64 Simpson panels on the smooth RRC shape
        — the point of the pluggable-kernel interface."""
        scalar = ion_emissivity_scalar(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="qags"
        )
        gauss = ion_emissivity_batched(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="gauss", gl_points=12
        )
        simpson = ion_emissivity_batched(
            tiny_db, oxygen_h_like, hot_point, grid_small, method="simpson", pieces=64
        )
        nz = scalar != 0.0
        err_gauss = np.abs((gauss[nz] - scalar[nz]) / scalar[nz]).max()
        err_simpson = np.abs((simpson[nz] - scalar[nz]) / scalar[nz]).max()
        assert err_gauss <= err_simpson

    def test_serial_apec_gauss_method(self, tiny_db, hot_point, grid_small):
        spec = SerialAPEC(tiny_db, grid_small, method="gauss").compute(
            hot_point, ions=tiny_db.ions[:4]
        )
        ref = SerialAPEC(tiny_db, grid_small, method="simpson-batch").compute(
            hot_point, ions=tiny_db.ions[:4]
        )
        assert np.allclose(spec.values, ref.values, rtol=1e-8)
