"""The radiative cooling function."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.cooling import CoolingCurve, cooling_curve, cooling_function


@pytest.fixture(scope="module")
def cool_db():
    return AtomicDatabase(AtomicConfig.tiny())


@pytest.fixture(scope="module")
def curve(cool_db):
    return cooling_curve(cool_db, t_min_k=2e5, t_max_k=1e8, n_samples=13)


class TestCoolingFunction:
    def test_positive(self, cool_db):
        assert cooling_function(cool_db, 1e6) > 0.0

    def test_density_independent(self, cool_db):
        """Lambda divides out n_e n_H by construction."""
        from repro.physics.apec import GridPoint, SerialAPEC
        from repro.physics.spectrum import EnergyGrid

        grid = EnergyGrid(np.geomspace(1e-3, 10.0, 121))
        apec = SerialAPEC(cool_db, grid, method="simpson-batch",
                          components=("rrc", "brems"))
        lam = {}
        for ne in (1.0, 5.0):
            point = GridPoint(temperature_k=1e6, ne_cm3=ne)
            total = apec.compute(point).total()
            lam[ne] = total / (ne * 0.83 * ne)
        assert lam[1.0] == pytest.approx(lam[5.0], rel=1e-9)

    def test_validation(self, cool_db):
        with pytest.raises(ValueError):
            cooling_function(cool_db, 0.0)


class TestCoolingCurve:
    def test_all_positive_finite(self, curve):
        assert np.all(curve.lambda_values > 0.0)
        assert np.all(np.isfinite(curve.lambda_values))

    def test_hump_in_line_dominated_band(self, curve):
        """The cooling hump sits between 1e5 and ~1e7 K, not at the hot
        bremsstrahlung end."""
        peak = curve.peak_temperature()
        assert 1e5 <= peak <= 2e7

    def test_interpolation_hits_samples(self, curve):
        i = len(curve) // 2
        t = float(curve.temperatures_k[i])
        assert curve.interpolate(t) == pytest.approx(
            float(curve.lambda_values[i]), rel=1e-9
        )

    def test_cooling_time_scales_inverse_density(self, curve):
        t1 = curve.cooling_time_scale(1e6, ne_cm3=1.0)
        t10 = curve.cooling_time_scale(1e6, ne_cm3=10.0)
        assert t1 / t10 == pytest.approx(10.0, rel=1e-9)

    def test_hot_gas_cools_slower_than_hump_gas(self, curve):
        hump = curve.peak_temperature()
        assert curve.cooling_time_scale(5e7, 1.0) > curve.cooling_time_scale(hump, 1.0)

    def test_validation(self, cool_db):
        with pytest.raises(ValueError):
            cooling_curve(cool_db, t_min_k=1e7, t_max_k=1e6)
        with pytest.raises(ValueError):
            cooling_curve(cool_db, n_samples=1)
        with pytest.raises(ValueError):
            CoolingCurve(np.zeros(3), np.zeros(2))
