"""Spectral fitting: response, mock observation, temperature recovery."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.fitting import (
    InstrumentResponse,
    chi_squared,
    fit_temperature,
    mock_observation,
)
from repro.physics.spectrum import EnergyGrid, Spectrum


@pytest.fixture(scope="module")
def fit_setup():
    db = AtomicDatabase(AtomicConfig.tiny())
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 80)
    apec = SerialAPEC(db, grid, method="simpson-batch")
    response = InstrumentResponse(grid, fwhm_kev=0.02)
    return db, grid, apec, response


class TestInstrumentResponse:
    def test_counts_conserved_on_grid_interior(self, fit_setup):
        _db, grid, _apec, response = fit_setup
        flux = np.zeros(grid.n_bins)
        flux[grid.n_bins // 2] = 1.0  # a line mid-grid
        folded = response.apply(flux)
        assert folded.sum() == pytest.approx(1.0, rel=1e-6)

    def test_smears_sharp_features(self, fit_setup):
        _db, grid, _apec, response = fit_setup
        flux = np.zeros(grid.n_bins)
        flux[grid.n_bins // 2] = 1.0
        folded = response.apply(flux)
        assert np.count_nonzero(folded > 1e-6) > 1
        assert folded.max() < 1.0

    def test_effective_area_scales(self, fit_setup):
        _db, grid, _apec, _ = fit_setup
        flux = np.full(grid.n_bins, 1.0)
        r1 = InstrumentResponse(grid, fwhm_kev=0.02, effective_area=1.0)
        r5 = InstrumentResponse(grid, fwhm_kev=0.02, effective_area=5.0)
        assert r5.apply(flux).sum() == pytest.approx(5.0 * r1.apply(flux).sum())

    def test_validation(self, fit_setup):
        _db, grid, _apec, response = fit_setup
        with pytest.raises(ValueError):
            InstrumentResponse(grid, fwhm_kev=0.0)
        with pytest.raises(ValueError):
            response.apply(np.zeros(3))


class TestMockObservation:
    def test_deterministic_without_rng(self, fit_setup):
        _db, grid, apec, response = fit_setup
        spec = apec.compute(GridPoint(temperature_k=1e7, ne_cm3=1.0))
        a = mock_observation(spec, response, exposure=100.0)
        b = mock_observation(spec, response, exposure=100.0)
        assert np.array_equal(a, b)

    def test_poisson_with_seeded_rng(self, fit_setup):
        _db, grid, apec, response = fit_setup
        spec = apec.compute(GridPoint(temperature_k=1e7, ne_cm3=1.0))
        exposure = 1e10 / max(spec.values.max(), 1e-30)
        a = mock_observation(spec, response, exposure, np.random.default_rng(1))
        b = mock_observation(spec, response, exposure, np.random.default_rng(1))
        c = mock_observation(spec, response, exposure, np.random.default_rng(2))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(a == np.round(a))  # integer counts

    def test_exposure_validation(self, fit_setup):
        _db, grid, apec, response = fit_setup
        spec = apec.compute(GridPoint(temperature_k=1e7, ne_cm3=1.0))
        with pytest.raises(ValueError):
            mock_observation(spec, response, exposure=0.0)


class TestChiSquared:
    def test_zero_for_perfect_model(self):
        m = np.array([5.0, 10.0, 2.0])
        assert chi_squared(m, m) == 0.0

    def test_positive_for_mismatch(self):
        assert chi_squared(np.array([5.0]), np.array([8.0])) > 0.0

    def test_variance_floor(self):
        # Model 0 counts would divide by zero without the floor.
        assert np.isfinite(chi_squared(np.array([0.0]), np.array([3.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi_squared(np.zeros(2), np.zeros(3))


class TestTemperatureFit:
    def test_recovers_true_temperature(self, fit_setup):
        _db, grid, apec, response = fit_setup
        t_true = 1.1e7
        truth = apec.compute(GridPoint(temperature_k=t_true, ne_cm3=1.0))
        exposure = 1e5 / max(response.apply(truth.values).max(), 1e-30)
        observed = mock_observation(truth, response, exposure)
        result = fit_temperature(
            apec, observed, response, exposure, t_bounds=(2e6, 5e7)
        )
        assert result.temperature_k == pytest.approx(t_true, rel=0.05)
        assert result.n_model_evals < 60

    def test_noisy_fit_close(self, fit_setup):
        _db, grid, apec, response = fit_setup
        t_true = 8.0e6
        truth = apec.compute(GridPoint(temperature_k=t_true, ne_cm3=1.0))
        exposure = 3e6 / max(response.apply(truth.values).max(), 1e-30)
        observed = mock_observation(
            truth, response, exposure, rng=np.random.default_rng(42)
        )
        result = fit_temperature(
            apec, observed, response, exposure, t_bounds=(2e6, 5e7)
        )
        assert result.temperature_k == pytest.approx(t_true, rel=0.15)

    def test_chi2_curve_sorted(self, fit_setup):
        _db, grid, apec, response = fit_setup
        truth = apec.compute(GridPoint(temperature_k=1e7, ne_cm3=1.0))
        exposure = 1e4 / max(response.apply(truth.values).max(), 1e-30)
        observed = mock_observation(truth, response, exposure)
        result = fit_temperature(
            apec, observed, response, exposure, t_bounds=(5e6, 3e7), max_evals=12
        )
        ts, c2s = result.chi2_curve()
        assert np.all(np.diff(ts) > 0)
        assert len(ts) == result.n_model_evals

    def test_bounds_validation(self, fit_setup):
        _db, grid, apec, response = fit_setup
        with pytest.raises(ValueError):
            fit_temperature(apec, np.zeros(grid.n_bins), response, 1.0, (2e7, 1e7))


class TestJointFit:
    def test_recovers_temperature_and_norm(self, fit_setup):
        from repro.physics.fitting import fit_temperature_and_norm

        _db, grid, apec, response = fit_setup
        t_true, norm_true = 9.0e6, 3.7e12
        truth = apec.compute(GridPoint(temperature_k=t_true, ne_cm3=1.0))
        observed = norm_true * response.apply(truth.values)
        fit, norm = fit_temperature_and_norm(
            apec, observed, response, t_bounds=(2e6, 5e7)
        )
        assert fit.temperature_k == pytest.approx(t_true, rel=1e-3)
        assert norm == pytest.approx(norm_true, rel=1e-3)

    def test_norm_profiled_out_is_scale_invariant(self, fit_setup):
        """Scaling the observation must not move the best-fit T."""
        from repro.physics.fitting import fit_temperature_and_norm

        _db, grid, apec, response = fit_setup
        truth = apec.compute(GridPoint(temperature_k=1.2e7, ne_cm3=1.0))
        base = 1e12 * response.apply(truth.values)
        fit1, n1 = fit_temperature_and_norm(apec, base, response, (3e6, 4e7), max_evals=16)
        fit2, n2 = fit_temperature_and_norm(apec, 100.0 * base, response, (3e6, 4e7), max_evals=16)
        assert fit1.temperature_k == pytest.approx(fit2.temperature_k, rel=1e-6)
        assert n2 == pytest.approx(100.0 * n1, rel=1e-6)

    def test_bounds_validation(self, fit_setup):
        from repro.physics.fitting import fit_temperature_and_norm

        _db, grid, apec, response = fit_setup
        with pytest.raises(ValueError):
            fit_temperature_and_norm(
                apec, np.zeros(grid.n_bins), response, t_bounds=(1e7, 1e6)
            )


class TestMetallicityFit:
    def test_recovers_metallicity(self, fit_setup):
        from repro.atomic.abundances import AbundanceSet
        from repro.physics.fitting import fit_metallicity

        db, grid, _apec, response = fit_setup
        z_true, t = 0.4, 1.0e7
        truth_apec = SerialAPEC(
            db, grid, method="simpson-batch",
            components=("rrc", "lines", "brems"),
            abundances=AbundanceSet(metallicity=z_true),
        )
        truth = truth_apec.compute(GridPoint(temperature_k=t, ne_cm3=1.0))
        exposure = 1e5 / max(response.apply(truth.values).max(), 1e-300)
        observed = exposure * response.apply(truth.values)
        result = fit_metallicity(
            db, grid, observed, response, exposure, temperature_k=t
        )
        assert result.temperature_k == pytest.approx(z_true, rel=0.05)

    def test_bounds_validation(self, fit_setup):
        from repro.physics.fitting import fit_metallicity

        db, grid, _apec, response = fit_setup
        with pytest.raises(ValueError):
            fit_metallicity(
                db, grid, np.zeros(grid.n_bins), response, 1.0, 1e7,
                z_bounds=(2.0, 1.0),
            )
