"""The Eq. (1) integrand: shape, threshold, analytic reference."""

import numpy as np
import pytest

from repro.physics.rrc import (
    RRCLevelParams,
    analytic_bin_integral,
    gaunt_factor,
    make_level_integrand,
    rrc_integrand,
    rrc_prefactor,
)
from repro.quadrature.qags import qags


def params(**over):
    base = dict(
        binding_kev=0.5,
        n=2,
        c_eff=7.0,
        g_level=2.0,
        kt_kev=1.0,
        ne_cm3=1.0,
        n_ion_cm3=1e-4,
    )
    base.update(over)
    return RRCLevelParams(**base)


class TestRRCLevelParams:
    @pytest.mark.parametrize(
        "over",
        [dict(binding_kev=0.0), dict(kt_kev=-1.0), dict(ne_cm3=-1.0)],
    )
    def test_invalid_rejected(self, over):
        with pytest.raises(ValueError):
            params(**over)

    def test_temperature_roundtrip(self):
        from repro.constants import K_B_KEV

        p = params(kt_kev=0.8617333262)
        assert p.temperature_k == pytest.approx(1e7, rel=1e-6)


class TestGauntFactor:
    def test_unity_at_threshold(self):
        assert gaunt_factor(np.array([1.0]))[0] == pytest.approx(1.0)

    def test_smooth_and_positive_over_decades(self):
        x = np.logspace(0, 3, 200)
        g = gaunt_factor(x)
        assert np.all(np.isfinite(g))
        assert np.all(g > 0.0)

    def test_below_threshold_clamped(self):
        assert gaunt_factor(np.array([0.5]))[0] == pytest.approx(1.0)


class TestRRCIntegrand:
    def test_zero_below_edge(self):
        p = params()
        e = np.array([0.1, 0.3, 0.4999])
        assert np.all(rrc_integrand(e, p) == 0.0)

    def test_positive_above_edge(self):
        p = params()
        e = np.linspace(0.5, 5.0, 50)
        vals = rrc_integrand(e, p)
        assert np.all(vals > 0.0)

    def test_continuous_from_above_at_edge(self):
        """f(I) equals the limit from above (closed threshold)."""
        p = params()
        at_edge = rrc_integrand(np.array([p.binding_kev]), p)[0]
        just_above = rrc_integrand(np.array([p.binding_kev * (1 + 1e-12)]), p)[0]
        assert at_edge == pytest.approx(just_above, rel=1e-9)
        assert at_edge > 0.0

    def test_exponential_decay_scale(self):
        """Without gaunt, f(E)/f(I) = exp(-(E-I)/kT) exactly."""
        p = params()
        e = np.array([p.binding_kev, p.binding_kev + p.kt_kev])
        v = rrc_integrand(e, p, gaunt=False)
        assert v[1] / v[0] == pytest.approx(np.exp(-1.0), rel=1e-12)

    def test_density_scaling(self):
        p1 = params(ne_cm3=1.0, n_ion_cm3=1.0)
        p2 = params(ne_cm3=3.0, n_ion_cm3=2.0)
        e = np.array([1.0])
        assert rrc_integrand(e, p2)[0] / rrc_integrand(e, p1)[0] == pytest.approx(6.0)

    def test_prefactor_positive(self):
        assert rrc_prefactor(params()) > 0.0

    def test_scalar_and_matrix_inputs(self):
        p = params()
        scalar = rrc_integrand(1.0, p)
        matrix = rrc_integrand(np.full((2, 3), 1.0), p)
        assert matrix.shape == (2, 3)
        assert np.allclose(matrix, float(scalar))


class TestAnalyticBinIntegral:
    def test_matches_qags_without_gaunt(self):
        p = params()
        f = make_level_integrand(p, gaunt=False)
        for e0, e1 in [(0.4, 0.9), (0.5, 0.6), (1.0, 3.0)]:
            lo = max(e0, p.binding_kev)
            num = qags(f, lo, e1, epsabs=1e-30, epsrel=1e-12).value
            exact = analytic_bin_integral(e0, e1, p)
            assert num == pytest.approx(exact, rel=1e-9)

    def test_zero_for_bins_below_edge(self):
        p = params()
        assert analytic_bin_integral(0.1, 0.4, p) == 0.0

    def test_bin_clipped_at_edge(self):
        p = params()
        full = analytic_bin_integral(0.5, 1.0, p)
        clipped = analytic_bin_integral(0.2, 1.0, p)
        assert clipped == pytest.approx(full, rel=1e-14)

    def test_reversed_bin_rejected(self):
        with pytest.raises(ValueError):
            analytic_bin_integral(1.0, 0.5, params())

    def test_additive_over_subbins(self):
        p = params()
        whole = analytic_bin_integral(0.5, 2.0, p)
        parts = analytic_bin_integral(0.5, 1.1, p) + analytic_bin_integral(1.1, 2.0, p)
        assert whole == pytest.approx(parts, rel=1e-12)
