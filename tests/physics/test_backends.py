"""Wall-clock backends through SerialAPEC: bit-determinism contracts.

The promises pinned here:

1. The unfused shard path (any backend) is bit-identical to the legacy
   in-process serial loop — per-ion partials are reduced in exact ion
   order by the parent.
2. The fused megabatch path is bit-identical across serial, thread and
   process backends for a fixed shard count (deterministic tree
   reduction of the same shard partials).
3. Backend/shard configuration never leaks into *which* numbers are
   computed — only into wall-clock time.
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.spectrum import EnergyGrid


@pytest.fixture(scope="module")
def db() -> AtomicDatabase:
    return AtomicDatabase(AtomicConfig.tiny())


@pytest.fixture(scope="module")
def grid() -> EnergyGrid:
    return EnergyGrid.from_wavelength(10.0, 45.0, 40)


@pytest.fixture(scope="module")
def point() -> GridPoint:
    return GridPoint(temperature_k=1.0e7, ne_cm3=1.0)


def _model(db, grid, **kw) -> SerialAPEC:
    return SerialAPEC(
        db, grid, method="simpson-batch", components=("rrc",),
        pieces=32, tail_tol=1.0e-9, **kw,
    )


@pytest.fixture(scope="module")
def serial_reference(db, grid, point) -> np.ndarray:
    return _model(db, grid).compute(point).values


class TestUnfusedDeterminism:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_to_serial_loop(
        self, db, grid, point, serial_reference, backend
    ):
        with _model(db, grid, backend=backend, jobs=2, shards=4) as model:
            values = model.compute(point).values
        np.testing.assert_array_equal(values, serial_reference)

    def test_shard_count_does_not_change_bits(
        self, db, grid, point, serial_reference
    ):
        for shards in (1, 3, 8):
            with _model(db, grid, backend="thread", jobs=2, shards=shards) as m:
                np.testing.assert_array_equal(
                    m.compute(point).values, serial_reference
                )


class TestFusedDeterminism:
    @pytest.fixture(scope="class")
    def fused_serial(self, db, grid, point) -> np.ndarray:
        return _model(db, grid, fused=True, shards=4).compute(point).values

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_across_backends(
        self, db, grid, point, fused_serial, backend
    ):
        with _model(
            db, grid, fused=True, backend=backend, jobs=2, shards=4
        ) as model:
            values = model.compute(point).values
        np.testing.assert_array_equal(values, fused_serial)

    def test_close_to_unfused_path(self, db, grid, point, serial_reference):
        # Fused reassociates the per-ion sums (tree reduction + megabatch
        # scatter), so agreement is to rounding, not bit-exact.
        values = _model(db, grid, fused=True, shards=4).compute(point).values
        scale = float(np.abs(serial_reference).max())
        assert np.abs(values - serial_reference).max() <= 1.0e-12 * scale

    def test_records_launch_statistics(self, db, grid, point):
        model = _model(db, grid, fused=True, shards=2)
        model.compute(point)
        stats = model.last_plan_stats
        assert stats is not None
        assert stats["n_shards"] == 2
        assert stats["n_passes"] >= 2
        assert stats["n_pairs"] > 0


class TestConfigurationValidation:
    def test_unknown_backend_rejected(self, db, grid):
        with pytest.raises(ValueError, match="backend"):
            _model(db, grid, backend="mpi")

    def test_fused_requires_batch_method(self, db, grid):
        with pytest.raises(ValueError, match="fused"):
            SerialAPEC(db, grid, method="qags", fused=True)

    def test_shards_validated(self, db, grid):
        with pytest.raises(ValueError, match="shards"):
            _model(db, grid, shards=0)

    def test_context_manager_closes_pool(self, db, grid, point):
        with _model(db, grid, backend="thread", jobs=2) as model:
            model.compute(point)
            assert model._backend_obj is not None
        assert model._backend_obj is None
