"""Compiled spectrum plans and the cross-request plan cache.

Pinned promises:

1. A plan's fused windows and per-ion active counts match the per-ion
   :func:`repro.physics.windows.level_windows` search exactly.
2. A fused megabatch execution matches the per-ion kernel path within
   1e-12 relative on seeded (temperature, method) combinations.
3. The cache is content-addressed: identical inputs hit, every key knob
   (grid, method, pieces, k, tail tolerance, Gaunt flag) misses, and a
   temperature change never recompiles (plans are T-independent).
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.constants import K_B_KEV
from repro.physics.apec import GridPoint, ion_emissivity_batched
from repro.physics.plan import PlanCache, SpectrumPlan
from repro.physics.spectrum import EnergyGrid
from repro.physics.windows import level_windows


@pytest.fixture(scope="module")
def db() -> AtomicDatabase:
    return AtomicDatabase(AtomicConfig.tiny())


@pytest.fixture(scope="module")
def grid() -> EnergyGrid:
    return EnergyGrid.from_wavelength(10.0, 45.0, 48)


def _get(cache: PlanCache, db, grid, **kw) -> SpectrumPlan:
    base = dict(method="simpson", pieces=32, k=5, tail_tol=1.0e-9, gaunt=True)
    base.update(kw)
    return cache.get(db, grid, ions=tuple(db.ions), **base)


class TestPlanStructure:
    def test_windows_match_level_windows_per_ion(self, db, grid):
        plan = _get(PlanCache(), db, grid)
        for kt in (0.4, 0.8617, 1.5):
            first, cutoff = plan.windows(kt)
            for i, ion in enumerate(plan.ions):
                lo, hi = plan.offsets[i], plan.offsets[i + 1]
                if lo == hi:
                    continue
                win = level_windows(
                    db.levels(ion).energy_kev, grid, kt, 1.0e-9, gaunt=True
                )
                np.testing.assert_array_equal(first[lo:hi], win.first)
                np.testing.assert_array_equal(cutoff[lo:hi], win.cutoff)

    def test_per_ion_active_matches_window_counts(self, db, grid):
        plan = _get(PlanCache(), db, grid)
        kt = K_B_KEV * 1.0e7
        active = plan.per_ion_active(kt)
        assert active.shape == (len(plan.ions),)
        for i, ion in enumerate(plan.ions):
            if db.n_levels(ion) == 0:
                assert active[i] == 0
                continue
            win = level_windows(
                db.levels(ion).energy_kev, grid, kt, 1.0e-9, gaunt=True
            )
            assert active[i] == win.n_active

    def test_window_memo_reuses_arrays(self, db, grid):
        plan = _get(PlanCache(), db, grid)
        a = plan.windows(0.8617)
        b = plan.windows(0.8617)
        assert a[0] is b[0] and a[1] is b[1]


class TestMegabatchEquivalence:
    @pytest.mark.parametrize("method", ["simpson", "romberg", "gauss"])
    def test_matches_per_ion_path_seeded(self, db, grid, method):
        rng = np.random.default_rng(2015)
        plan = _get(PlanCache(), db, grid, method=method)
        for temperature in 10 ** rng.uniform(6.3, 7.3, size=3):
            point = GridPoint(temperature_k=float(temperature), ne_cm3=1.0)
            expected = np.zeros(grid.n_bins)
            for ion in db.ions:
                if db.n_levels(ion) == 0:
                    continue
                expected += ion_emissivity_batched(
                    db, ion, point, grid, method=method,
                    pieces=32, k=5, tail_tol=1.0e-9,
                )
            got = plan.execute(point).values
            scale = float(np.abs(expected).max())
            assert np.abs(got - expected).max() <= 1.0e-12 * scale

    def test_factorized_matches_generic_megabatch(self, db, grid):
        plan = _get(PlanCache(), db, grid, method="simpson")
        point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        fast = plan.execute(point)
        # Disable the shared-abscissa fast path on this instance only.
        plan._execute_simpson_factorized = lambda *a, **k: None
        generic = plan.execute(point)
        assert fast.n_pairs == generic.n_pairs + generic.n_pairs_skipped
        scale = float(np.abs(generic.values).max())
        assert np.abs(fast.values - generic.values).max() <= 1.0e-12 * scale

    def test_execute_reports_launch_statistics(self, db, grid):
        plan = _get(PlanCache(), db, grid)
        res = plan.execute(GridPoint(temperature_k=1.0e7, ne_cm3=1.0))
        assert res.n_passes >= 1
        assert res.n_pairs > 0
        assert res.values.shape == (grid.n_bins,)


class TestExecuteMany:
    @pytest.mark.parametrize("method", ["simpson", "romberg", "gauss"])
    def test_bit_identical_to_per_point_execute(self, db, grid, method):
        plan = _get(PlanCache(), db, grid, method=method)
        points = [
            GridPoint(temperature_k=t, ne_cm3=1.0)
            for t in (4.0e6, 1.0e7, 2.5e7)
        ]
        many = plan.execute_many(points)
        assert len(many) == len(points)
        for point, res in zip(points, many):
            single = plan.execute(point)
            np.testing.assert_array_equal(res.values, single.values)
            assert res.n_pairs == single.n_pairs

    def test_empty_and_single_point(self, db, grid):
        plan = _get(PlanCache(), db, grid)
        assert plan.execute_many([]) == []
        point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        np.testing.assert_array_equal(
            plan.execute_many([point])[0].values, plan.execute(point).values
        )

    def test_unsafe_temperatures_fall_back_per_point(self, db, grid):
        # A kT far outside the rescaling guard's comfort zone must not
        # poison the batch: the guard routes it through execute().
        plan = _get(PlanCache(), db, grid)
        points = [
            GridPoint(temperature_k=t, ne_cm3=1.0) for t in (1.0e4, 1.0e7)
        ]
        many = plan.execute_many(points)
        for point, res in zip(points, many):
            np.testing.assert_array_equal(
                res.values, plan.execute(point).values
            )


class TestPlanCache:
    def test_same_inputs_hit(self, db, grid):
        cache = PlanCache()
        a = _get(cache, db, grid)
        b = _get(cache, db, grid)
        assert a is b
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.compilations == 1

    @pytest.mark.parametrize(
        "change",
        [
            {"method": "romberg"},
            {"pieces": 64},
            {"k": 6},
            {"tail_tol": 1.0e-6},
            {"gaunt": False},
        ],
    )
    def test_every_key_knob_misses(self, db, grid, change):
        cache = PlanCache()
        _get(cache, db, grid)
        _get(cache, db, grid, **change)
        assert cache.stats.compilations == 2
        assert cache.stats.hits == 0

    def test_grid_change_misses(self, db, grid):
        cache = PlanCache()
        _get(cache, db, grid)
        _get(cache, db, EnergyGrid.from_wavelength(10.0, 45.0, 50))
        assert cache.stats.compilations == 2

    def test_temperature_never_recompiles(self, db, grid):
        cache = PlanCache()
        plan = _get(cache, db, grid)
        for t in (5.0e6, 1.0e7, 2.0e7):
            plan.execute(GridPoint(temperature_k=t, ne_cm3=1.0))
        again = _get(cache, db, grid)
        assert again is plan
        assert cache.stats.compilations == 1

    def test_lru_eviction(self, db, grid):
        cache = PlanCache(max_entries=2)
        _get(cache, db, grid, pieces=16)
        _get(cache, db, grid, pieces=32)
        _get(cache, db, grid, pieces=64)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (pieces=16) was evicted; refetching recompiles.
        _get(cache, db, grid, pieces=16)
        assert cache.stats.compilations == 4

    def test_rejects_unknown_method(self, db, grid):
        with pytest.raises(ValueError, match="method"):
            _get(PlanCache(), db, grid, method="midpoint")

    def test_stats_as_dict(self, db, grid):
        cache = PlanCache()
        _get(cache, db, grid)
        d = cache.stats.as_dict()
        assert d["compilations"] == 1
        assert cache.stats.lookups == 1
        assert cache.stats.hit_rate == 0.0
