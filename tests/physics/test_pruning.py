"""Pruned (active-window) kernels vs the dense reference.

Two promises are pinned here:

1. ``tail_tol = 0`` is *bit-for-bit* identical to the legacy kernels —
   pruning off must not perturb a single ULP.
2. ``tail_tol > 0`` agrees with the dense reference to within the
   requested relative tail tolerance on every bin, across seeded
   (temperature, grid, ion) combinations, quadrature methods, and both
   Gaunt settings.
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.apec import (
    GridPoint,
    SerialAPEC,
    ion_emissivity_batched,
    ion_emissivity_scalar,
)
from repro.physics.spectrum import EnergyGrid


@pytest.fixture(scope="module")
def db() -> AtomicDatabase:
    return AtomicDatabase(AtomicConfig.tiny())


def _grids() -> list[EnergyGrid]:
    return [
        # The paper's window: edges mostly below, ~1 kT span at 1e7 K.
        EnergyGrid.from_wavelength(10.0, 45.0, 64),
        # A wide grid where the tail cutoff genuinely binds at low kT.
        EnergyGrid.linear(0.05, 12.0, 150),
    ]


def _assert_within_budget(
    pruned: np.ndarray, dense: np.ndarray, tail_tol: float
) -> None:
    """The pruning contract: dropped mass <= tail_tol * total mass.

    The budget is *mass*-relative — a bin beyond the cutoff is dropped
    entirely (pointwise relative error 1) precisely because its whole
    content fits in the budget.  So assert the summed residual against
    the total emission, and the per-bin residual against the peak.
    """
    resid = np.abs(pruned - dense)
    total = float(dense.sum())
    slack = 1.0 + 1e-9  # float reassociation noise on top of the budget
    assert float(resid.sum()) <= tail_tol * total * slack + 1e-300
    assert float(resid.max()) <= tail_tol * total * slack + 1e-300


class TestBitForBitOff:
    @pytest.mark.parametrize("method", ["simpson", "romberg", "gauss"])
    @pytest.mark.parametrize("gaunt", [True, False])
    def test_zero_tail_tol_identical(self, db, method, gaunt):
        point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        grid = EnergyGrid.from_wavelength(10.0, 45.0, 64)
        for ion in list(db.ions)[:6]:
            if db.n_levels(ion) == 0:
                continue
            dense = ion_emissivity_batched(
                db, ion, point, grid, method=method, gaunt=gaunt
            )
            off = ion_emissivity_batched(
                db, ion, point, grid, method=method, gaunt=gaunt, tail_tol=0.0
            )
            assert np.array_equal(dense, off)

    def test_negative_tail_tol_rejected(self, db):
        point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        grid = EnergyGrid.from_wavelength(10.0, 45.0, 16)
        ion = list(db.ions)[0]
        with pytest.raises(ValueError):
            ion_emissivity_batched(db, ion, point, grid, tail_tol=-1e-9)
        with pytest.raises(ValueError):
            ion_emissivity_scalar(db, ion, point, grid, tail_tol=-1e-9)
        with pytest.raises(ValueError):
            SerialAPEC(db, grid, tail_tol=-1e-9)


class TestPrunedWithinTolerance:
    @pytest.mark.parametrize("method", ["simpson", "romberg", "gauss"])
    @pytest.mark.parametrize("gaunt", [True, False])
    @pytest.mark.parametrize("tail_tol", [1e-6, 1e-9])
    def test_property_seeded_combinations(self, db, method, gaunt, tail_tol):
        rng = np.random.default_rng(20150413)
        ions = [i for i in db.ions if db.n_levels(i) > 0]
        temperatures = [1.0e6, 1.0e7, 5.0e7]
        for grid in _grids():
            for t_k in temperatures:
                point = GridPoint(temperature_k=t_k, ne_cm3=1.0)
                for ion in rng.choice(len(ions), size=3, replace=False):
                    ion = ions[int(ion)]
                    dense = ion_emissivity_batched(
                        db, ion, point, grid, method=method, gaunt=gaunt
                    )
                    pruned = ion_emissivity_batched(
                        db,
                        ion,
                        point,
                        grid,
                        method=method,
                        gaunt=gaunt,
                        tail_tol=tail_tol,
                    )
                    if not dense.any():
                        assert not pruned.any()
                        continue
                    _assert_within_budget(pruned, dense, tail_tol)

    def test_scalar_clamp_matches_dense_scan(self, db):
        # The scalar path's early bin-range clamp must agree with the
        # full scan to the same budget.
        point = GridPoint(temperature_k=2.0e6, ne_cm3=1.0)
        grid = EnergyGrid.linear(0.05, 8.0, 60)
        ion = [i for i in db.ions if i.name == "O+7"][0]
        dense = ion_emissivity_scalar(db, ion, point, grid, method="simpson")
        pruned = ion_emissivity_scalar(
            db, ion, point, grid, method="simpson", tail_tol=1e-9
        )
        _assert_within_budget(pruned, dense, 1e-9)

    def test_serial_apec_threads_tail_tol(self, db):
        grid = EnergyGrid.from_wavelength(10.0, 45.0, 40)
        point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
        dense = SerialAPEC(db, grid, method="simpson-batch").compute(point)
        pruned = SerialAPEC(
            db, grid, method="simpson-batch", tail_tol=1e-9
        ).compute(point)
        assert pruned.meta["tail_tol"] == 1e-9
        _assert_within_budget(pruned.values, dense.values, 1e-9)
