"""CIE ionization equilibrium."""

import numpy as np
import pytest

from repro.atomic.ions import Ion
from repro.physics.ionbalance import cie_fractions, ion_density, ion_fraction


class TestCIEFractions:
    @pytest.mark.parametrize("z", [1, 8, 26])
    @pytest.mark.parametrize("t", [1e4, 1e6, 1e8])
    def test_normalized_and_nonnegative(self, z, t):
        f = cie_fractions(z, t)
        assert f.shape == (z + 1,)
        assert np.all(f >= 0.0)
        assert f.sum() == pytest.approx(1.0, abs=1e-12)

    def test_cold_plasma_neutral(self):
        f = cie_fractions(8, 1e3)
        assert f[0] > 0.99

    def test_hot_plasma_fully_stripped(self):
        f = cie_fractions(8, 1e9)
        assert f[-1] > 0.9

    def test_mean_charge_monotone_in_temperature(self):
        temps = np.logspace(4, 9, 12)
        mean_charge = [
            float(np.arange(9) @ cie_fractions(8, t)) for t in temps
        ]
        assert all(b >= a - 1e-9 for a, b in zip(mean_charge, mean_charge[1:]))

    def test_detailed_balance_holds(self):
        """f_c S_c = f_{c+1} alpha_{c+1} for every adjacent pair."""
        from repro.atomic.rates import ionization_rate, recombination_rate

        z, t = 8, 2e6
        f = cie_fractions(z, t)
        for c in range(z):
            s = float(ionization_rate(z, c, np.array([t]))[0])
            a = float(recombination_rate(z, c + 1, np.array([t]))[0])
            lhs, rhs = f[c] * s, f[c + 1] * a
            scale = max(lhs, rhs)
            if scale > 1e-30:
                assert lhs == pytest.approx(rhs, rel=1e-8)

    @pytest.mark.parametrize("args", [(0, 1e6), (8, 0.0), (8, -5.0)])
    def test_invalid_inputs(self, args):
        with pytest.raises(ValueError):
            cie_fractions(*args)

    def test_caching_returns_copies(self):
        a = cie_fractions(8, 1e6)
        a[0] = 99.0
        b = cie_fractions(8, 1e6)
        assert b[0] != 99.0


class TestIonDensity:
    def test_fraction_of_recombining_ion(self):
        ion = Ion(z=8, charge=8)
        f = cie_fractions(8, 1e7)
        assert ion_fraction(ion, 1e7) == pytest.approx(f[8])

    def test_density_scales_with_ne(self):
        ion = Ion(z=8, charge=8)
        d1 = ion_density(ion, 1e7, ne_cm3=1.0)
        d2 = ion_density(ion, 1e7, ne_cm3=10.0)
        assert d2 == pytest.approx(10.0 * d1)

    def test_density_includes_abundance(self):
        h = ion_density(Ion(z=1, charge=1), 1e7, 1.0)
        fe = ion_density(Ion(z=26, charge=26), 1e7, 1.0)
        assert h > fe  # iron is ~1e-4.4 of hydrogen

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            ion_density(Ion(z=8, charge=8), 1e7, -1.0)
