"""Synthetic line emission."""

import numpy as np
import pytest

from repro.atomic.ions import Ion
from repro.physics.lines import (
    build_line_list,
    doppler_sigma_kev,
    ion_line_emissivity,
)
from repro.physics.spectrum import EnergyGrid


@pytest.fixture()
def h_like_o(tiny_db):
    return [i for i in tiny_db.ions if i.name == "O+8"][0]


class TestDopplerSigma:
    def test_scales_with_sqrt_temperature(self):
        s1 = doppler_sigma_kev(np.array([1.0]), 1e6, 16.0)[0]
        s4 = doppler_sigma_kev(np.array([1.0]), 4e6, 16.0)[0]
        assert s4 / s1 == pytest.approx(2.0)

    def test_scales_with_energy(self):
        s = doppler_sigma_kev(np.array([1.0, 2.0]), 1e7, 16.0)
        assert s[1] / s[0] == pytest.approx(2.0)

    def test_heavier_ion_narrower(self):
        light = doppler_sigma_kev(np.array([1.0]), 1e7, 4.0)[0]
        heavy = doppler_sigma_kev(np.array([1.0]), 1e7, 56.0)[0]
        assert heavy < light

    def test_validation(self):
        with pytest.raises(ValueError):
            doppler_sigma_kev(np.array([1.0]), 0.0, 16.0)


class TestLineList:
    def test_lyman_alpha_energy(self, tiny_db, h_like_o):
        """The strongest H-like O line must be the 2p -> 1s transition at
        (1 - 1/4) of the ground binding energy."""
        lines = build_line_list(tiny_db, h_like_o)
        ls = tiny_db.levels(h_like_o)
        ground = float(ls.energy_kev[0])
        assert lines.energy_kev[0] == pytest.approx(ground * 0.75, rel=1e-6)
        assert lines.upper_n[0] == 2
        assert lines.lower_n[0] == 1

    def test_only_dipole_allowed(self, tiny_db, h_like_o):
        lines = build_line_list(tiny_db, h_like_o)
        # Downward transitions only.
        assert np.all(lines.upper_n > lines.lower_n)
        assert np.all(lines.energy_kev > 0.0)

    def test_sorted_by_strength(self, tiny_db, h_like_o):
        lines = build_line_list(tiny_db, h_like_o)
        assert np.all(np.diff(lines.strength) <= 0.0)

    def test_max_lines_cap(self, tiny_db, h_like_o):
        lines = build_line_list(tiny_db, h_like_o, max_lines=3)
        assert len(lines) == 3

    def test_deterministic(self, tiny_db, h_like_o):
        a = build_line_list(tiny_db, h_like_o)
        b = build_line_list(tiny_db, h_like_o)
        assert np.array_equal(a.energy_kev, b.energy_kev)


class TestLineEmissivity:
    def test_flux_conserved_across_binnings(self, tiny_db, hot_point, h_like_o):
        fine = EnergyGrid.from_wavelength(10.0, 45.0, 400)
        coarse = EnergyGrid.from_wavelength(10.0, 45.0, 23)
        e_fine = ion_line_emissivity(tiny_db, h_like_o, hot_point, fine)
        e_coarse = ion_line_emissivity(tiny_db, h_like_o, hot_point, coarse)
        assert e_fine.sum() == pytest.approx(e_coarse.sum(), rel=1e-9)

    def test_nonnegative(self, tiny_db, hot_point, grid_small):
        for ion in tiny_db.ions[::9]:
            e = ion_line_emissivity(tiny_db, ion, hot_point, grid_small)
            assert np.all(e >= 0.0)

    def test_lines_are_localized(self, tiny_db, hot_point, h_like_o):
        """Most flux concentrates in few bins (lines, not continuum)."""
        grid = EnergyGrid.from_wavelength(10.0, 45.0, 400)
        e = ion_line_emissivity(tiny_db, h_like_o, hot_point, grid)
        total = e.sum()
        assert total > 0.0
        top20 = np.sort(e)[-20:].sum()
        assert top20 / total > 0.9

    def test_density_squared_scaling(self, tiny_db, grid_small, h_like_o):
        from repro.physics.apec import GridPoint

        e1 = ion_line_emissivity(
            tiny_db, h_like_o, GridPoint(temperature_k=1e7, ne_cm3=1.0), grid_small
        )
        e2 = ion_line_emissivity(
            tiny_db, h_like_o, GridPoint(temperature_k=1e7, ne_cm3=3.0), grid_small
        )
        nz = e1 > 0
        assert np.allclose(e2[nz] / e1[nz], 9.0, rtol=1e-9)

    def test_zero_density_ion_silent(self, tiny_db, grid_small):
        """Ions with ~zero CIE population emit nothing."""
        from repro.physics.apec import GridPoint

        neutral_recombining = Ion(z=8, charge=1)  # O+1 at 1e8 K: empty
        e = ion_line_emissivity(
            tiny_db,
            neutral_recombining,
            GridPoint(temperature_k=1e8, ne_cm3=1.0),
            grid_small,
        )
        assert e.sum() < 1e-30
