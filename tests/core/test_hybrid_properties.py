"""Property-based tests of the hybrid runner (hypothesis).

Random miniature workloads and configurations; invariants that must hold
for *every* schedule the runner can produce.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec


@st.composite
def workload(draw):
    n_points = draw(st.integers(min_value=1, max_value=4))
    n_tasks = draw(st.integers(min_value=1, max_value=30))
    tasks = []
    for tid in range(n_tasks):
        n_levels = draw(st.integers(min_value=1, max_value=12))
        bins = draw(st.sampled_from([100, 1_000, 10_000]))
        tasks.append(
            Task(
                task_id=tid,
                kind=TaskKind.ION,
                kernel=KernelSpec.for_ion_task(
                    n_levels=n_levels, n_bins=bins, evals_per_integral=65
                ),
                point_index=tid % n_points,
                n_levels=n_levels,
            )
        )
    return tasks


@st.composite
def config(draw):
    return HybridConfig(
        n_workers=draw(st.integers(min_value=1, max_value=6)),
        n_gpus=draw(st.integers(min_value=0, max_value=3)),
        max_queue_length=draw(st.integers(min_value=1, max_value=6)),
        async_depth=draw(st.sampled_from([0, 0, 0, 2])),
        stagger_s=draw(st.sampled_from([0.0, 0.1])),
    )


class TestHybridInvariants:
    @given(tasks=workload(), cfg=config())
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_sanity(self, tasks, cfg):
        result = HybridRunner(cfg).run(tasks)
        m = result.metrics
        # Every task placed exactly once.
        assert m.total_tasks == len(tasks)
        # No GPUs -> everything on CPU.
        if cfg.n_gpus == 0:
            assert m.cpu_tasks == len(tasks)
        # Makespan positive and finite.
        assert np.isfinite(result.makespan_s)
        assert result.makespan_s > 0.0
        # Load residency integrates to the makespan on every device.
        for d in range(cfg.n_gpus):
            assert m.load_residency[d].sum() <= result.makespan_s + 1e-9
        # Utilizations are probabilities.
        assert all(0.0 <= u <= 1.0 + 1e-12 for u in result.gpu_utilization)

    @given(tasks=workload(), cfg=config())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, tasks, cfg):
        a = HybridRunner(cfg).run(tasks)
        b = HybridRunner(cfg).run(tasks)
        assert a.makespan_s == b.makespan_s
        assert int(a.metrics.gpu_tasks.sum()) == int(b.metrics.gpu_tasks.sum())

    @given(tasks=workload())
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounded_below_by_critical_path(self, tasks):
        """No schedule beats the per-worker serial floor: the busiest
        rank's prep plus its cheapest-possible execution."""
        cfg = HybridConfig(
            n_workers=2, n_gpus=2, max_queue_length=4, stagger_s=0.0
        )
        cost = cfg.cost
        result = HybridRunner(cfg).run(tasks)
        runner = HybridRunner(cfg)
        floors = []
        for part in runner._partition(tasks):
            if not part:
                continue
            points = {t.point_index for t in part}
            floor = len(points) * 0.0  # point share sums to overhead total
            floor += sum(cost.prep_s(t.n_levels) for t in part)
            floor += len(points) * cost.point_overhead_s
            floors.append(floor)
        assert result.makespan_s >= max(floors) - 1e-9

    @given(tasks=workload())
    @settings(max_examples=20, deadline=None)
    def test_serial_time_is_upper_envelope(self, tasks):
        """The hybrid run never exceeds the serial time plus worker
        bring-up (it can always do what serial does, in parallel)."""
        cfg = HybridConfig(n_workers=4, n_gpus=2, max_queue_length=4)
        runner = HybridRunner(cfg)
        hybrid = runner.run(tasks).makespan_s
        serial = runner.serial_time(tasks)
        mpi_factor = cfg.cost.mpi_contention * cfg.cost.cpu_fallback_penalty
        slack = cfg.n_workers * (cfg.stagger_s or 0.0) + 1e-6
        assert hybrid <= serial * mpi_factor + slack
