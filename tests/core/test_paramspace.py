"""The Fig. 1 parameter space."""

import numpy as np
import pytest

from repro.core.paramspace import Axis, ParameterSpace


class TestAxis:
    def test_linear(self):
        ax = Axis.linear("t", 1.0, 3.0, 3)
        assert ax.values == (1.0, 2.0, 3.0)

    def test_log(self):
        ax = Axis.log("d", 1.0, 100.0, 3)
        assert ax.values == pytest.approx((1.0, 10.0, 100.0))

    def test_single_value(self):
        assert len(Axis.linear("x", 5.0, 5.0, 1)) == 1

    @pytest.mark.parametrize(
        "ctor,args",
        [
            (Axis.linear, ("x", 0.0, 1.0, 0)),
            (Axis.log, ("x", -1.0, 1.0, 3)),
            (Axis.log, ("x", 1.0, 10.0, 0)),
        ],
    )
    def test_validation(self, ctor, args):
        with pytest.raises(ValueError):
            ctor(*args)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Axis("x", ())

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            Axis("x", (1.0, float("nan")))


class TestParameterSpace:
    @pytest.fixture()
    def space(self):
        return ParameterSpace(
            temperature=Axis.log("temperature", 1e6, 1e8, 3),
            density=Axis.linear("density", 1.0, 2.0, 2),
            time=Axis.linear("time", 0.0, 10.0, 2),
        )

    def test_shape_and_count(self, space):
        assert space.shape == (3, 2, 2)
        assert len(space) == 12

    def test_iteration_matches_indexing(self, space):
        for i, pt in enumerate(space):
            indexed = space.point(i)
            assert indexed.temperature_k == pt.temperature_k
            assert indexed.ne_cm3 == pt.ne_cm3
            assert indexed.time_s == pt.time_s

    def test_point_out_of_range(self, space):
        with pytest.raises(IndexError):
            space.point(12)
        with pytest.raises(IndexError):
            space.point(-1)

    def test_partition_equal_shares(self, space):
        parts = space.partition(5)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 12
        assert max(sizes) - min(sizes) <= 1
        # Every point appears exactly once.
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(12))

    def test_partition_validation(self, space):
        with pytest.raises(ValueError):
            space.partition(0)

    def test_default_time_axis(self):
        space = ParameterSpace(
            temperature=Axis.linear("temperature", 1e6, 1e6, 1),
            density=Axis.linear("density", 1.0, 1.0, 1),
        )
        assert len(space) == 1
        assert space.point(0).time_s == 0.0

    def test_paper_test_space_has_24_points(self):
        assert len(ParameterSpace.paper_test_space()) == 24


class TestConstruction:
    def test_from_config_ranges(self):
        space = ParameterSpace.from_config(
            {
                "temperature": {"lo": 1e6, "hi": 1e8, "n": 3, "spacing": "log"},
                "density": [0.5, 1.5],
                "time": {"lo": 0.0, "hi": 1.0, "n": 2},
            }
        )
        assert space.shape == (3, 2, 2)
        assert space.temperature.values[1] == pytest.approx(1e7)

    def test_from_config_missing_axis(self):
        with pytest.raises(ValueError):
            ParameterSpace.from_config({"temperature": [1e6]})

    def test_from_config_bad_spacing(self):
        with pytest.raises(ValueError):
            ParameterSpace.from_config(
                {"temperature": {"lo": 1, "hi": 2, "n": 2, "spacing": "cubic"},
                 "density": [1.0]}
            )

    def test_from_config_bad_type(self):
        with pytest.raises(TypeError):
            ParameterSpace.from_config({"temperature": 5.0, "density": [1.0]})

    def test_from_simulation_dedupes(self):
        space = ParameterSpace.from_simulation(
            temperatures_k=np.array([1e6, 1e7, 1e6]),
            densities_cm3=np.array([1.0, 1.0]),
            times_s=np.array([0.0, 1.0, 2.0]),
        )
        assert space.shape == (2, 1, 3)
