"""Property-based scheduler tests: Algorithm 1 invariants under random
alloc/free traces (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import NO_DEVICE, SharedMemoryScheduler


@st.composite
def trace(draw):
    n_devices = draw(st.integers(min_value=1, max_value=6))
    max_len = draw(st.integers(min_value=1, max_value=8))
    ops = draw(st.lists(st.booleans(), min_size=1, max_size=200))
    return n_devices, max_len, ops


class TestSchedulerInvariants:
    @given(t=trace())
    @settings(max_examples=150, deadline=None)
    def test_invariants_under_random_traces(self, t):
        """Replay random alloc(True)/free(False) sequences; frees target a
        device we actually hold.  Invariants after every operation:

        - 0 <= load[d] <= max_queue_length
        - history[d] monotone non-decreasing
        - sum(load) == tasks currently held
        - NO_DEVICE iff every queue is full
        """
        n_devices, max_len, ops = t
        s = SharedMemoryScheduler(n_devices, max_len)
        held: list[int] = []
        histories = s.histories()
        for want_alloc in ops:
            if want_alloc or not held:
                d = s.sche_alloc()
                if d == NO_DEVICE:
                    assert all(l >= max_len for l in s.loads())
                else:
                    assert 0 <= d < n_devices
                    held.append(d)
            else:
                s.sche_free(held.pop(0))
            loads = s.loads()
            assert all(0 <= l <= max_len for l in loads)
            assert sum(loads) == len(held)
            new_hist = s.histories()
            assert all(b >= a for a, b in zip(histories, new_hist))
            histories = new_hist
            s.validate()

    @given(
        n_devices=st.integers(min_value=1, max_value=8),
        n_tasks=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_pure_alloc_spreads_evenly(self, n_devices, n_tasks):
        """With no frees and enough capacity, loads differ by at most 1."""
        s = SharedMemoryScheduler(n_devices, max_queue_length=1000)
        for _ in range(n_tasks):
            assert s.sche_alloc() != NO_DEVICE
        loads = s.loads()
        assert max(loads) - min(loads) <= 1
        assert sum(loads) == n_tasks

    @given(
        n_devices=st.integers(min_value=1, max_value=4),
        max_len=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_exactly_devices_times_maxlen(self, n_devices, max_len):
        s = SharedMemoryScheduler(n_devices, max_len)
        admitted = 0
        while s.sche_alloc() != NO_DEVICE:
            admitted += 1
            assert admitted <= n_devices * max_len + 1
        assert admitted == n_devices * max_len
