"""Cost model: paper-anchor consistency."""

import pytest

from repro.core.calibration import CostModel, measure_live_eval_rates


class TestCostModel:
    def test_prep_splits_fixed_and_per_level(self):
        c = CostModel()
        assert c.prep_s(0) == pytest.approx(c.prep_fixed_s)
        assert c.prep_s(10) == pytest.approx(c.prep_fixed_s + 10 * c.prep_per_level_s)

    def test_prep_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            CostModel().prep_s(-1)

    def test_cpu_hierarchy(self):
        """serial < mpi-contended < (fallback relation per penalty)."""
        c = CostModel()
        n = 10_000
        serial = c.cpu_task_serial_s(n)
        mpi = c.cpu_task_mpi_s(n)
        fallback = c.cpu_task_fallback_s(n)
        assert serial < mpi
        assert serial < fallback
        assert mpi == pytest.approx(serial * c.mpi_contention)
        assert fallback == pytest.approx(serial * c.cpu_fallback_penalty)

    def test_custom_evals_per_integral(self):
        c = CostModel()
        default = c.cpu_task_serial_s(100)
        nei = c.cpu_task_serial_s(100, evals_per_integral=3600)
        assert nei / default == pytest.approx(3600 / c.cpu_qags_evals_per_integral)

    def test_with_overrides(self):
        c = CostModel().with_overrides(cpu_fallback_penalty=9.0)
        assert c.cpu_fallback_penalty == 9.0
        assert CostModel().cpu_fallback_penalty != 9.0

    @pytest.mark.parametrize(
        "kwargs", [dict(cpu_eval_s=0.0), dict(mpi_contention=-1.0), dict(prep_fixed_s=-0.1)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CostModel(**kwargs)


class TestPaperAnchors:
    """The calibrated constants must keep reproducing the paper's numbers."""

    def test_serial_point_near_1440_seconds(self, des_db):
        c = CostModel()
        levels = des_db.total_levels()
        n_int = levels * 50_000
        prep = sum(c.prep_s(des_db.n_levels(i)) for i in des_db.ions)
        t = c.serial_point_s(n_int, prep)
        assert 1200.0 < t < 1700.0  # the reconciled ~1440 s/point

    def test_mpi_speedup_near_13_5(self, des_db):
        c = CostModel()
        levels = des_db.total_levels()
        n_int = levels * 50_000
        prep = sum(c.prep_s(des_db.n_levels(i)) for i in des_db.ions)
        serial = c.serial_point_s(n_int, prep)
        mpi = c.mpi_point_s(n_int, prep)
        # 24 ranks, one point each: speedup = serial/mpi * 24... no —
        # each rank handles one point concurrently, so speedup is
        # 24*serial / mpi_per_point ... with 24 points: serial_total =
        # 24*serial, parallel = mpi (all ranks concurrent).
        speedup = 24.0 * serial / (24.0 * mpi / 24.0)
        assert speedup == pytest.approx(13.5, rel=0.08)

    def test_integral_fraction_over_90_percent(self, des_db):
        """'the integral operations account for more than 90% of the total'."""
        c = CostModel()
        n_int = des_db.total_levels() * 50_000
        prep = sum(c.prep_s(des_db.n_levels(i)) for i in des_db.ions)
        integral = c.cpu_task_serial_s(n_int)
        total = c.serial_point_s(n_int, prep)
        assert integral / total > 0.9


class TestLiveMeasurement:
    def test_measures_both_rates(self):
        import numpy as np

        rates = measure_live_eval_rates(lambda x: np.exp(-x), n_evals=50_000)
        assert rates["vectorized_evals_per_s"] > 0
        assert rates["scalar_evals_per_s"] > 0
        # The entire premise of the batch kernel: vectorized >> scalar.
        assert rates["vectorized_evals_per_s"] > 10 * rates["scalar_evals_per_s"]
