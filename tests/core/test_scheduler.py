"""Algorithm 1 semantics: SCHE-ALLOC / SCHE-FREE."""

import pytest

from repro.core.metrics import MetricsLedger
from repro.core.scheduler import (
    NO_DEVICE,
    ClientServerScheduler,
    SharedMemoryScheduler,
)


class TestScheAlloc:
    def test_single_device_round_trip(self):
        s = SharedMemoryScheduler(n_devices=1, max_queue_length=2)
        assert s.sche_alloc() == 0
        assert s.loads() == [1]
        assert s.histories() == [1]
        s.sche_free(0)
        assert s.loads() == [0]
        assert s.histories() == [1]  # history is monotone

    def test_least_loaded_wins(self):
        s = SharedMemoryScheduler(n_devices=3, max_queue_length=4)
        assert s.sche_alloc() == 0
        assert s.sche_alloc() == 1
        assert s.sche_alloc() == 2
        # All loads equal 1; history also equal -> device 0 again.
        assert s.sche_alloc() == 0
        s.sche_free(2)
        # Device 2 now has the lowest load.
        assert s.sche_alloc() == 2

    def test_history_breaks_ties(self):
        """Among equally loaded devices, the least-used historically wins."""
        s = SharedMemoryScheduler(n_devices=2, max_queue_length=8)
        # Send three tasks to device 0's history, freeing each.
        for _ in range(3):
            d = s.sche_alloc()
            s.sche_free(d)
        # Histories now differ: [2, 1] (alternated by tie-break).
        h = s.histories()
        assert h[0] != h[1]
        less_used = h.index(min(h))
        assert s.sche_alloc() == less_used

    def test_full_load_returns_no_device(self):
        s = SharedMemoryScheduler(n_devices=2, max_queue_length=1)
        assert s.sche_alloc() == 0
        assert s.sche_alloc() == 1
        assert s.sche_alloc() == NO_DEVICE
        s.sche_free(0)
        assert s.sche_alloc() == 0

    def test_zero_devices_always_cpu(self):
        s = SharedMemoryScheduler(n_devices=0, max_queue_length=4)
        assert s.sche_alloc() == NO_DEVICE

    def test_load_never_exceeds_max(self):
        s = SharedMemoryScheduler(n_devices=2, max_queue_length=3)
        for _ in range(20):
            s.sche_alloc()
        assert all(l <= 3 for l in s.loads())
        s.validate()

    def test_free_without_occupy_rejected(self):
        s = SharedMemoryScheduler(n_devices=1, max_queue_length=2)
        with pytest.raises(RuntimeError):
            s.sche_free(0)

    def test_free_out_of_range_rejected(self):
        s = SharedMemoryScheduler(n_devices=1, max_queue_length=2)
        with pytest.raises(ValueError):
            s.sche_free(5)

    @pytest.mark.parametrize("kwargs", [dict(n_devices=-1, max_queue_length=2), dict(n_devices=1, max_queue_length=0)])
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            SharedMemoryScheduler(**kwargs)

    def test_metrics_hooks_invoked(self):
        m = MetricsLedger(n_devices=1, max_queue_length=2)
        s = SharedMemoryScheduler(1, 2, metrics=m)
        d = s.sche_alloc(now=1.0)
        s.sche_free(d, now=3.0)
        m.finalize(4.0)
        assert int(m.gpu_tasks.sum()) == 1
        # Residency: load 0 for [0,1) and [3,4), load 1 for [1,3).
        assert m.load_residency[0, 0] == pytest.approx(2.0)
        assert m.load_residency[0, 1] == pytest.approx(2.0)

    def test_shared_memory_scheduler_is_free(self):
        assert SharedMemoryScheduler(1, 2).rpc_latency_s == 0.0


class TestClientServerScheduler:
    def test_same_policy_with_latency(self):
        s = ClientServerScheduler(2, 2, rpc_latency_s=1e-3)
        assert s.rpc_latency_s == 1e-3
        assert s.sche_alloc() == 0  # identical dispatch policy

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ClientServerScheduler(1, 2, rpc_latency_s=-1.0)


class TestBalancePolicy:
    def test_even_distribution_under_symmetric_load(self):
        """min-load + history tie-break spreads tasks evenly (the paper's
        goal for similar-size tasks)."""
        s = SharedMemoryScheduler(n_devices=4, max_queue_length=100)
        for _ in range(100):
            s.sche_alloc()
        assert s.loads() == [25, 25, 25, 25]

    def test_alloc_free_interleaving_stays_balanced(self):
        s = SharedMemoryScheduler(n_devices=3, max_queue_length=10)
        held = []
        for _ in range(30):
            held.append(s.sche_alloc())
            if len(held) >= 4:
                s.sche_free(held.pop(0))
        hist = s.histories()
        assert max(hist) - min(hist) <= 1


class TestWeightedScheduler:
    def _make(self, service=(1.0, 1.0), max_len=4):
        from repro.core.scheduler import WeightedScheduler

        return WeightedScheduler(len(service), max_len, service)

    def test_equal_weights_reduce_to_algorithm_1(self):
        reference = SharedMemoryScheduler(n_devices=3, max_queue_length=4)
        weighted = self._make(service=(1.0, 1.0, 1.0))
        for _ in range(9):
            assert weighted.sche_alloc() == reference.sche_alloc()

    def test_prefers_fast_device_under_load(self):
        # Device 1 is 3x slower: with one task on each, the fast device's
        # backlog (2 x 1.0) still beats the slow one's (2 x 3.0).
        s = self._make(service=(1.0, 3.0), max_len=4)
        assert s.sche_alloc() == 0  # backlog 1.0 vs 3.0
        assert s.sche_alloc() == 0  # backlog 2.0 vs 3.0
        assert s.sche_alloc() == 1  # backlog 3.0 vs 3.0 -> history tie? 3.0 == 3.0
        # With equal backlog the lower history count wins: device 1.

    def test_respects_queue_bound(self):
        from repro.core.scheduler import NO_DEVICE

        s = self._make(service=(1.0, 100.0), max_len=2)
        placements = [s.sche_alloc() for _ in range(4)]
        assert placements.count(0) == 2
        assert placements.count(1) == 2  # forced onto the slow device
        assert s.sche_alloc() == NO_DEVICE

    def test_validation(self):
        from repro.core.scheduler import WeightedScheduler

        with pytest.raises(ValueError):
            WeightedScheduler(2, 4, [1.0])  # wrong length
        with pytest.raises(ValueError):
            WeightedScheduler(2, 4, [1.0, 0.0])  # non-positive

    def test_hybrid_integration_beats_min_load_when_severe(self):
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner
        from repro.gpusim.device import TESLA_C2075
        from repro.atomic.database import AtomicConfig

        tasks = build_tasks(
            WorkloadSpec(n_points=2, bins_per_level=20_000, db_config=AtomicConfig.tiny())
        )
        slow = TESLA_C2075.with_eval_rate(TESLA_C2075.eval_rate / 4.0)
        fleet = (TESLA_C2075, slow)
        times = {}
        for kind in ("shared", "weighted"):
            cfg = HybridConfig(
                n_workers=4, n_gpus=2, max_queue_length=3,
                devices=fleet, scheduler_kind=kind,
            )
            times[kind] = HybridRunner(cfg).run(tasks).makespan_s
        assert times["weighted"] <= times["shared"] * 1.02


class TestPredictiveScheduler:
    def _make(self, n=3, max_len=4, **kw):
        from repro.core.scheduler import PredictiveScheduler

        return PredictiveScheduler(n, max_len, **kw)

    def test_equal_costs_reduce_to_algorithm_1(self):
        """With every predicted cost equal, backlog is load x cost, so the
        placement sequence is exactly Algorithm 1's."""
        reference = SharedMemoryScheduler(n_devices=3, max_queue_length=4)
        predictive = self._make()
        for _ in range(9):
            assert predictive.sche_alloc(cost_s=0.5) == reference.sche_alloc()

    def test_places_by_predicted_seconds_not_count(self):
        s = self._make(n=2)
        assert s.sche_alloc(cost_s=10.0) == 0
        # Device 0 holds one 10 s task; two 1 s tasks still finish
        # sooner on device 1 despite its higher count.
        assert s.sche_alloc(cost_s=1.0) == 1
        assert s.sche_alloc(cost_s=1.0) == 1
        assert s.backlogs_s() == pytest.approx([10.0, 2.0])

    def test_free_restores_backlog_exactly(self):
        s = self._make(n=2)
        d = s.sche_alloc(cost_s=0.123456789)
        s.sche_free(d, cost_s=0.123456789)
        assert s.backlogs_s() == [0.0, 0.0]
        assert s.loads() == [0, 0]
        s.validate()

    def test_cpu_threshold_in_predicted_seconds(self):
        from repro.core.scheduler import NO_DEVICE

        s = self._make(n=2, cpu_threshold_s=5.0)
        assert s.sche_alloc(cost_s=3.0) == 0
        assert s.sche_alloc(cost_s=3.0) == 1
        # Best finish would be 6 s > 5 s threshold -> CPU fallback even
        # though both queues have free slots.
        assert s.sche_alloc(cost_s=3.0) == NO_DEVICE
        # A cheap task still fits under the threshold.
        assert s.sche_alloc(cost_s=1.0) == 0

    def test_slot_cap_still_hard(self):
        from repro.core.scheduler import NO_DEVICE

        s = self._make(n=2, max_len=1)
        assert s.sche_alloc(cost_s=0.1) == 0
        assert s.sche_alloc(cost_s=0.1) == 1
        assert s.sche_alloc(cost_s=0.1) == NO_DEVICE

    def test_history_tie_break_on_exact_tick_ties(self):
        s = self._make(n=2)
        # Alternates on exact ties like Algorithm 1.
        assert s.sche_alloc(cost_s=1.0) == 0
        assert s.sche_alloc(cost_s=1.0) == 1
        s.sche_free(0, cost_s=1.0)
        s.sche_free(1, cost_s=1.0)
        # Equal backlogs (zero) again; histories [1, 1] -> device 0.
        assert s.sche_alloc(cost_s=2.0) == 0

    def test_first_tie_break_is_positional(self):
        s = self._make(n=3, tie_break="first")
        for _ in range(2):
            d = s.sche_alloc(cost_s=1.0)
            s.sche_free(d, cost_s=1.0)
            assert d == 0

    def test_on_steal_moves_slot_and_backlog(self):
        s = self._make(n=2)
        assert s.sche_alloc(cost_s=1.0) == 0
        assert s.sche_alloc(cost_s=2.0) == 1
        assert s.sche_alloc(cost_s=0.5) == 0  # finish 1.5 vs 2.5
        s.on_steal(victim=0, thief=1, cost_s=0.5)
        assert s.loads() == [1, 2]
        assert s.backlogs_s() == pytest.approx([1.0, 2.5])
        s.validate()
        # Conservation: freeing each with its carried cost zeroes out.
        s.sche_free(0, cost_s=1.0)
        s.sche_free(1, cost_s=2.0)
        s.sche_free(1, cost_s=0.5)
        assert s.backlogs_s() == [0.0, 0.0]
        s.validate()

    def test_on_steal_rejects_out_of_range(self):
        s = self._make(n=2)
        s.sche_alloc(cost_s=1.0)
        with pytest.raises(ValueError):
            s.on_steal(victim=0, thief=5, cost_s=1.0)
        with pytest.raises(ValueError):
            s.on_steal(victim=-1, thief=1, cost_s=1.0)

    def test_on_steal_books_metrics(self):
        m = MetricsLedger(n_devices=2, max_queue_length=4)
        s = self._make(n=2, metrics=m)
        s.sche_alloc(now=0.0, cost_s=2.0)
        s.on_steal(victim=0, thief=1, now=1.0, cost_s=2.0)
        assert int(m.steals[1]) == 1
        assert int(m.donations[0]) == 1
        assert int(m.steals.sum()) == int(m.donations.sum())

    def test_negative_cost_rejected(self):
        s = self._make()
        with pytest.raises(ValueError):
            s.sche_alloc(cost_s=-1.0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            self._make(cpu_threshold_s=0.0)

    def test_zero_devices_always_cpu(self):
        from repro.core.scheduler import NO_DEVICE

        s = self._make(n=0)
        assert s.sche_alloc(cost_s=1.0) == NO_DEVICE
