"""MetricsLedger: residency accounting and derived quantities."""

import numpy as np
import pytest

from repro.core.metrics import MetricsLedger, RunResult


class TestLoadResidency:
    def test_residency_integrates_to_makespan(self):
        m = MetricsLedger(n_devices=1, max_queue_length=4)
        m.on_load_change(0, 0, 1, now=1.0)
        m.on_load_change(0, 1, 2, now=2.0)
        m.on_load_change(0, 2, 1, now=5.0)
        m.on_load_change(0, 1, 0, now=6.0)
        m.finalize(10.0)
        assert m.load_residency[0].sum() == pytest.approx(10.0)
        assert m.load_residency[0, 0] == pytest.approx(1.0 + 4.0)
        assert m.load_residency[0, 1] == pytest.approx(1.0 + 1.0)
        assert m.load_residency[0, 2] == pytest.approx(3.0)

    def test_distribution_percent_sums_to_100(self):
        m = MetricsLedger(1, 3)
        m.on_load_change(0, 0, 1, 2.0)
        m.finalize(4.0)
        dist = m.load_distribution_percent(0)
        assert dist.sum() == pytest.approx(100.0)

    def test_distribution_empty_run(self):
        m = MetricsLedger(1, 3)
        m.finalize(0.0)
        assert np.all(m.load_distribution_percent(0) == 0.0)

    def test_load_at_least_ratio(self):
        m = MetricsLedger(1, 4)
        m.on_load_change(0, 0, 3, 0.0)
        m.on_load_change(0, 3, 0, 4.0)
        m.finalize(10.0)
        assert m.load_at_least_ratio(3) == pytest.approx(0.4)
        assert m.load_at_least_ratio(1) == pytest.approx(0.4)
        assert m.load_at_least_ratio(0) == pytest.approx(1.0)


class TestTaskCounting:
    def test_gpu_tasks_counted_on_load_increase_only(self):
        m = MetricsLedger(2, 4)
        m.on_load_change(0, 0, 1, 0.0)  # +1 task
        m.on_load_change(0, 1, 0, 1.0)  # release: not a task
        m.on_load_change(1, 0, 1, 1.0)
        assert list(m.gpu_tasks) == [1, 1]

    def test_ratio(self):
        m = MetricsLedger(1, 4)
        m.on_load_change(0, 0, 1, 0.0)
        m.on_cpu_task()
        assert m.gpu_task_ratio() == pytest.approx(0.5)
        assert m.total_tasks == 2

    def test_ratio_empty(self):
        assert MetricsLedger(1, 4).gpu_task_ratio() == 0.0

    def test_wait_statistics(self):
        m = MetricsLedger(1, 4)
        m.on_task_timing(wait_s=1.0, service_s=0.1)
        m.on_task_timing(wait_s=3.0, service_s=0.1)
        assert m.mean_wait_s() == pytest.approx(2.0)
        assert MetricsLedger(1, 4).mean_wait_s() == 0.0


class TestRunResult:
    def test_speedup(self):
        m = MetricsLedger(1, 4)
        r = RunResult(makespan_s=10.0, metrics=m, n_tasks=5)
        assert r.speedup_vs(100.0) == pytest.approx(10.0)

    def test_speedup_zero_makespan_rejected(self):
        m = MetricsLedger(1, 4)
        r = RunResult(makespan_s=0.0, metrics=m, n_tasks=0)
        with pytest.raises(ValueError):
            r.speedup_vs(10.0)
