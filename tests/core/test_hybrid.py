"""The hybrid runner: end-to-end scheduling behaviour at reduced scale."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig
from repro.core.calibration import CostModel
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec


@pytest.fixture(scope="module")
def mini_tasks():
    """2 points x 36 ions, sized so a test run takes milliseconds."""
    return build_tasks(
        WorkloadSpec(n_points=2, bins_per_level=5_000, db_config=AtomicConfig.tiny())
    )


def mini_config(**over):
    base = dict(n_workers=4, n_gpus=1, max_queue_length=4)
    base.update(over)
    return HybridConfig(**base)


class TestBaselines:
    def test_serial_time_additive(self, mini_tasks):
        runner = HybridRunner(mini_config())
        whole = runner.serial_time(mini_tasks)
        half_a = runner.serial_time([t for t in mini_tasks if t.point_index == 0])
        half_b = runner.serial_time([t for t in mini_tasks if t.point_index == 1])
        assert whole == pytest.approx(half_a + half_b, rel=1e-12)

    def test_mpi_only_faster_than_serial(self, mini_tasks):
        runner = HybridRunner(mini_config())
        serial = runner.serial_time(mini_tasks)
        mpi = runner.run_mpi_only(mini_tasks)
        assert mpi.makespan_s < serial
        assert mpi.mode == "mpi"
        assert mpi.metrics.cpu_tasks == len(mini_tasks)

    def test_mpi_only_empty(self):
        res = HybridRunner(mini_config()).run_mpi_only([])
        assert res.makespan_s == 0.0


class TestHybridRun:
    def test_all_tasks_complete(self, mini_tasks):
        res = HybridRunner(mini_config()).run(mini_tasks)
        assert res.metrics.total_tasks == len(mini_tasks)
        assert res.makespan_s > 0.0
        assert res.mode == "hybrid"

    def test_hybrid_beats_mpi_only(self, mini_tasks):
        runner = HybridRunner(mini_config())
        hybrid = runner.run(mini_tasks)
        mpi = runner.run_mpi_only(mini_tasks)
        assert hybrid.makespan_s < mpi.makespan_s

    def test_no_gpu_degenerates_to_cpu_only(self, mini_tasks):
        res = HybridRunner(mini_config(n_gpus=0)).run(mini_tasks)
        assert res.metrics.cpu_tasks == len(mini_tasks)
        assert res.metrics.gpu_task_ratio() == 0.0

    def test_determinism(self, mini_tasks):
        r1 = HybridRunner(mini_config()).run(mini_tasks)
        r2 = HybridRunner(mini_config()).run(mini_tasks)
        assert r1.makespan_s == r2.makespan_s
        assert np.array_equal(r1.metrics.load_residency, r2.metrics.load_residency)

    def test_more_gpus_not_slower(self, mini_tasks):
        times = [
            HybridRunner(mini_config(n_gpus=g)).run(mini_tasks).makespan_s
            for g in (1, 2, 4)
        ]
        assert times[1] <= times[0] * 1.02
        assert times[2] <= times[1] * 1.02

    def test_queue_bound_respected(self, mini_tasks):
        res = HybridRunner(mini_config(max_queue_length=2)).run(mini_tasks)
        # Residency histogram has no mass beyond the bound.
        assert res.metrics.load_residency.shape[1] == 3

    def test_utilization_reported(self, mini_tasks):
        res = HybridRunner(mini_config(n_gpus=2)).run(mini_tasks)
        assert len(res.gpu_utilization) == 2
        assert all(0.0 <= u <= 1.0 for u in res.gpu_utilization)

    def test_real_execution_accumulates_spectra(self):
        """Tasks with execute callables produce per-point spectra."""
        bins = 16
        tasks = []
        for tid in range(8):
            point = tid % 2
            payload = np.full(bins, float(tid))
            tasks.append(
                Task(
                    task_id=tid,
                    kind=TaskKind.ION,
                    kernel=KernelSpec(
                        n_integrals=100,
                        evals_per_integral=65,
                        execute=(lambda p=payload: p),
                    ),
                    point_index=point,
                    n_levels=1,
                    cpu_execute=(lambda p=payload: p),
                )
            )
        res = HybridRunner(mini_config(n_workers=2)).run(tasks)
        assert set(res.spectra) == {0, 1}
        expected0 = sum(float(t) for t in range(8) if t % 2 == 0)
        assert np.allclose(res.spectra[0], expected0)

    def test_client_server_scheduler_slower(self, mini_tasks):
        shared = HybridRunner(mini_config()).run(mini_tasks)
        served = HybridRunner(
            mini_config(scheduler_kind="client-server", rpc_latency_s=5e-3)
        ).run(mini_tasks)
        assert served.makespan_s > shared.makespan_s

    def test_async_mode_completes_everything(self, mini_tasks):
        res = HybridRunner(mini_config(async_depth=4)).run(mini_tasks)
        assert res.metrics.total_tasks == len(mini_tasks)

    def test_async_mode_at_least_as_fast_when_gpu_bound(self, mini_tasks):
        sync = HybridRunner(mini_config(n_gpus=1)).run(mini_tasks)
        async_ = HybridRunner(mini_config(n_gpus=1, async_depth=4)).run(mini_tasks)
        assert async_.makespan_s <= sync.makespan_s * 1.05


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_workers=0),
            dict(n_gpus=-1),
            dict(max_queue_length=0),
            dict(scheduler_kind="mps"),
            dict(async_depth=-1),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            mini_config(**kwargs)


class TestPartitioning:
    def test_points_partitioned_by_modulo(self, mini_tasks):
        runner = HybridRunner(mini_config(n_workers=2))
        parts = runner._partition(mini_tasks)
        assert all(t.point_index == 0 for t in parts[0])
        assert all(t.point_index == 1 for t in parts[1])

    def test_fallback_pricing_uses_task_override(self):
        cost = CostModel()
        t = Task(
            task_id=0,
            kind=TaskKind.NEI_CHUNK,
            kernel=KernelSpec(n_integrals=10, evals_per_integral=100),
            cpu_evals_per_integral=1000,
        )
        priced = cost.cpu_task_fallback_s(t.n_integrals, t.cpu_evals_per_integral)
        default = cost.cpu_task_fallback_s(t.n_integrals)
        assert priced != default


class TestEmbeddedBatch:
    """spawn_batch: the service broker's per-batch entry point."""

    def test_embedded_batch_matches_standalone_run(self, mini_tasks):
        from repro.cluster.simclock import SimClock

        direct = HybridRunner(mini_config()).run(mini_tasks)
        clock = SimClock()
        results = []

        def driver():
            yield 123.0  # batch starts mid-simulation, not at t = 0
            handle = HybridRunner(mini_config()).spawn_batch(mini_tasks, clock)
            results.append((yield handle))

        clock.spawn(driver())
        clock.run()
        embedded = results[0]
        assert embedded.makespan_s == pytest.approx(direct.makespan_s, rel=1e-12)
        assert embedded.metrics.total_tasks == direct.metrics.total_tasks
        assert embedded.metrics.start_time == pytest.approx(123.0)
        # Residency intervals open at the batch start, so totals span the
        # batch's own makespan rather than the absolute clock reading.
        assert embedded.metrics.load_residency[0].sum() == pytest.approx(
            embedded.makespan_s, rel=1e-9
        )

    def test_concurrent_batches_do_not_perturb_each_other(self, mini_tasks):
        from repro.cluster.simclock import SimClock

        direct = HybridRunner(mini_config()).run(mini_tasks)
        clock = SimClock()
        results = []

        def driver(delay):
            yield delay
            handle = HybridRunner(mini_config()).spawn_batch(mini_tasks, clock)
            results.append((yield handle))

        clock.spawn(driver(0.0))
        clock.spawn(driver(1.5))
        clock.run()
        assert len(results) == 2
        for res in results:
            # Each batch owns its node, so interleaved event processing
            # must not change its virtual timing.
            assert res.makespan_s == pytest.approx(direct.makespan_s, rel=1e-12)

    def test_run_result_handle_exposes_result(self, mini_tasks):
        from repro.cluster.simclock import SimClock

        clock = SimClock()
        handle = HybridRunner(mini_config()).spawn_batch(mini_tasks, clock)
        clock.run()
        assert handle.result is not None
        assert handle.result.n_tasks == len(mini_tasks)
