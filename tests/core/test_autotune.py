"""Automatic maximum-queue-length search."""

import pytest

from repro.atomic.database import AtomicConfig
from repro.core.autotune import autotune_queue_length
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig


@pytest.fixture(scope="module")
def probe_tasks():
    return build_tasks(
        WorkloadSpec(n_points=2, bins_per_level=5_000, db_config=AtomicConfig.tiny())
    )


class TestAutotune:
    def test_returns_candidate_and_times(self, probe_tasks):
        cfg = HybridConfig(n_workers=4, n_gpus=1, max_queue_length=2)
        best, times = autotune_queue_length(cfg, probe_tasks, candidates=(1, 2, 4, 8))
        assert best in (1, 2, 4, 8)
        assert set(times) <= {1, 2, 4, 8}
        assert times[best] == min(times.values())

    def test_stops_after_inflexion(self, probe_tasks):
        """Once times stop improving, later candidates are skipped."""
        cfg = HybridConfig(n_workers=4, n_gpus=1, max_queue_length=2)
        _best, times = autotune_queue_length(
            cfg, probe_tasks, candidates=(1, 2, 4, 8, 16, 32, 64), patience=1
        )
        # The deep-queue plateau means 64 should never be probed.
        assert len(times) < 7

    def test_deterministic(self, probe_tasks):
        cfg = HybridConfig(n_workers=4, n_gpus=2, max_queue_length=2)
        a = autotune_queue_length(cfg, probe_tasks, candidates=(2, 4, 6))
        b = autotune_queue_length(cfg, probe_tasks, candidates=(2, 4, 6))
        assert a == b

    def test_small_queue_worse_than_best(self, probe_tasks):
        """The Fig. 4 shape at miniature scale: maxlen 1 loses."""
        cfg = HybridConfig(n_workers=4, n_gpus=1, max_queue_length=2)
        _best, times = autotune_queue_length(cfg, probe_tasks, candidates=(1, 4, 8))
        assert times[1] >= min(times.values())

    def test_validation(self, probe_tasks):
        cfg = HybridConfig()
        with pytest.raises(ValueError):
            autotune_queue_length(cfg, [], candidates=(2, 4))
        with pytest.raises(ValueError):
            autotune_queue_length(cfg, probe_tasks, candidates=())
        with pytest.raises(ValueError):
            autotune_queue_length(cfg, probe_tasks, candidates=(4, 2))


class TestProbePrefix:
    def test_prefix_covers_every_point(self):
        from repro.core.autotune import probe_prefix
        from repro.core.hybrid import HybridConfig

        tasks = build_tasks(
            WorkloadSpec(n_points=3, bins_per_level=1_000, db_config=AtomicConfig.tiny())
        )
        probe, cfg = probe_prefix(tasks, HybridConfig(), tasks_per_point=5)
        points = {t.point_index for t in probe}
        assert points == {0, 1, 2}
        per_point = [sum(1 for t in probe if t.point_index == p) for p in points]
        assert all(c == 5 for c in per_point)

    def test_point_overhead_scaled_by_fraction(self):
        from repro.core.autotune import probe_prefix
        from repro.core.hybrid import HybridConfig

        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=1_000, db_config=AtomicConfig.tiny())
        )
        full_per_point = len(tasks)
        base = HybridConfig()
        _probe, cfg = probe_prefix(tasks, base, tasks_per_point=6)
        expected = base.cost.point_overhead_s * 6 / full_per_point
        assert cfg.cost.point_overhead_s == pytest.approx(expected)

    def test_prefix_larger_than_point_is_whole_point(self):
        from repro.core.autotune import probe_prefix
        from repro.core.hybrid import HybridConfig

        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=1_000, db_config=AtomicConfig.tiny())
        )
        probe, cfg = probe_prefix(tasks, HybridConfig(), tasks_per_point=10_000)
        assert len(probe) == len(tasks)
        assert cfg.cost.point_overhead_s == pytest.approx(
            HybridConfig().cost.point_overhead_s
        )

    def test_validation(self):
        from repro.core.autotune import probe_prefix
        from repro.core.hybrid import HybridConfig

        with pytest.raises(ValueError):
            probe_prefix([], HybridConfig(), tasks_per_point=5)
        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=1_000, db_config=AtomicConfig.tiny())
        )
        with pytest.raises(ValueError):
            probe_prefix(tasks, HybridConfig(), tasks_per_point=0)
