"""Per-task trace recording (timeline export)."""

import pytest

from repro.atomic.database import AtomicConfig
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.metrics import TaskEvent


@pytest.fixture(scope="module")
def traced_run():
    tasks = build_tasks(
        WorkloadSpec(n_points=2, bins_per_level=2_000, db_config=AtomicConfig.tiny())
    )
    runner = HybridRunner(
        HybridConfig(n_workers=2, n_gpus=1, max_queue_length=2, record_trace=True)
    )
    return tasks, runner.run(tasks)


class TestTraceRecording:
    def test_every_task_appears_once(self, traced_run):
        tasks, result = traced_run
        ids = [ev.task_id for ev in result.metrics.trace]
        assert sorted(ids) == [t.task_id for t in tasks]

    def test_events_well_formed(self, traced_run):
        _tasks, result = traced_run
        for ev in result.metrics.trace:
            assert ev.end > ev.start >= 0.0
            assert ev.duration == ev.end - ev.start
            assert ev.placement in ("gpu", "cpu")
            assert (ev.device >= 0) == (ev.placement == "gpu")

    def test_events_within_makespan(self, traced_run):
        _tasks, result = traced_run
        for ev in result.metrics.trace:
            assert ev.end <= result.makespan_s + 1e-9

    def test_rank_task_intervals_disjoint(self, traced_run):
        """A synchronous rank works one task at a time."""
        _tasks, result = traced_run
        by_rank: dict[int, list[TaskEvent]] = {}
        for ev in result.metrics.trace:
            by_rank.setdefault(ev.rank, []).append(ev)
        for events in by_rank.values():
            events.sort(key=lambda e: e.start)
            for a, b in zip(events, events[1:]):
                assert b.start >= a.end - 1e-9

    def test_gantt_rows_lane_mapping(self, traced_run):
        _tasks, result = traced_run
        rows = result.metrics.gantt_rows()
        assert len(rows) == len(result.metrics.trace)
        for lane, label, start, end in rows:
            assert end > start
            if label.startswith("gpu"):
                assert lane >= 1000

    def test_trace_off_by_default(self):
        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=1_000, db_config=AtomicConfig.tiny())
        )
        res = HybridRunner(
            HybridConfig(n_workers=2, n_gpus=1, max_queue_length=2)
        ).run(tasks)
        assert res.metrics.trace == []


class TestChromeTrace:
    def test_export_shape(self, traced_run):
        import json

        _tasks, result = traced_run
        events = result.metrics.to_chrome_trace()
        assert len(events) == len(result.metrics.trace)
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] > 0.0
            assert ev["cat"] in ("gpu", "cpu")
        # Must be JSON-serializable as-is.
        json.dumps(events)

    def test_gpu_events_grouped_by_device_pid(self, traced_run):
        _tasks, result = traced_run
        events = result.metrics.to_chrome_trace()
        gpu_events = [e for e in events if e["cat"] == "gpu"]
        assert gpu_events
        assert all(e["pid"] == 1 for e in gpu_events)
