"""The Fig. 2 MPI program: collectives + scheduler, end to end."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.mpi_program import MPIProgram


@pytest.fixture(scope="module")
def mini_tasks():
    return build_tasks(
        WorkloadSpec(n_points=2, bins_per_level=5_000, db_config=AtomicConfig.tiny())
    )


def cfg(**over):
    base = dict(n_workers=4, n_gpus=1, max_queue_length=4)
    base.update(over)
    return HybridConfig(**base)


class TestMPIProgram:
    def test_all_tasks_complete(self, mini_tasks):
        result = MPIProgram(cfg()).run(mini_tasks)
        assert result.metrics.total_tasks == len(mini_tasks)
        assert result.mode == "mpi-program"

    def test_matches_direct_runner_makespan(self, mini_tasks):
        """The collectives cost nothing at zero latency: the MPI-shaped
        program and the direct runner must time out identically."""
        direct = HybridRunner(cfg()).run(mini_tasks)
        via_mpi = MPIProgram(cfg()).run(mini_tasks)
        assert via_mpi.makespan_s == pytest.approx(direct.makespan_s, rel=1e-9)
        assert int(via_mpi.metrics.gpu_tasks.sum()) == int(
            direct.metrics.gpu_tasks.sum()
        )

    def test_latency_adds_cost(self, mini_tasks):
        free = MPIProgram(cfg(), latency=0.0).run(mini_tasks)
        slow = MPIProgram(cfg(), latency=0.5).run(mini_tasks)
        assert slow.makespan_s > free.makespan_s

    def test_gathered_spectra_match_serial(self):
        """Results flow rank -> gather -> aggregate correctly."""
        from repro.atomic.database import AtomicDatabase
        from repro.physics.apec import SerialAPEC, ion_emissivity_batched
        from repro.physics.spectrum import EnergyGrid
        from repro.core.paramspace import Axis, ParameterSpace

        db = AtomicDatabase(AtomicConfig.tiny())
        grid = EnergyGrid.from_wavelength(10.0, 45.0, 20)
        space = ParameterSpace(
            temperature=Axis.linear("temperature", 1e7, 1e7, 1),
            density=Axis.linear("density", 1.0, 1.0, 1),
        )

        def gpu_factory(ion, point_index):
            point = space.point(point_index)
            return lambda: ion_emissivity_batched(db, ion, point, grid)

        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=grid.n_bins,
                         db_config=AtomicConfig.tiny()),
            db=db,
            gpu_execute_factory=gpu_factory,
            cpu_execute_factory=gpu_factory,
        )
        result = MPIProgram(cfg(n_workers=3)).run(tasks)
        serial = SerialAPEC(db, grid, method="simpson-batch").compute(space.point(0))
        assert np.allclose(result.spectra[0], serial.values, rtol=1e-10)

    def test_deterministic(self, mini_tasks):
        a = MPIProgram(cfg(n_gpus=2)).run(mini_tasks)
        b = MPIProgram(cfg(n_gpus=2)).run(mini_tasks)
        assert a.makespan_s == b.makespan_s
