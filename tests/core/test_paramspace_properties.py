"""Property-based tests on the parameter space (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paramspace import Axis, ParameterSpace


@st.composite
def spaces(draw):
    nt = draw(st.integers(min_value=1, max_value=5))
    nd = draw(st.integers(min_value=1, max_value=4))
    ns = draw(st.integers(min_value=1, max_value=3))
    return ParameterSpace(
        temperature=Axis.log("temperature", 1e5, 1e8, nt),
        density=Axis.linear("density", 0.5, 3.0, nd),
        time=Axis.linear("time", 0.0, 10.0, ns),
    )


class TestParameterSpaceProperties:
    @given(space=spaces())
    @settings(max_examples=60, deadline=None)
    def test_iteration_count_matches_shape(self, space):
        points = list(space)
        assert len(points) == space.n_points
        nt, nd, ns = space.shape
        assert space.n_points == nt * nd * ns

    @given(space=spaces())
    @settings(max_examples=60, deadline=None)
    def test_points_unique_and_indexable(self, space):
        seen = set()
        for i, pt in enumerate(space):
            key = (pt.temperature_k, pt.ne_cm3, pt.time_s)
            assert key not in seen
            seen.add(key)
            indexed = space.point(i)
            assert (indexed.temperature_k, indexed.ne_cm3, indexed.time_s) == key

    @given(space=spaces(), n_ranks=st.integers(min_value=1, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_partition_is_a_partition(self, space, n_ranks):
        parts = space.partition(n_ranks)
        assert len(parts) == n_ranks
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(space.n_points))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
