"""Task packing at ion / level / element granularity."""

import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.task import TaskKind


@pytest.fixture(scope="module")
def small_spec():
    return WorkloadSpec(n_points=2, bins_per_level=100, db_config=AtomicConfig.tiny())


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.n_points == 24
        assert spec.bins_per_level == 50_000
        assert spec.granularity is Granularity.ION
        assert spec.evals_per_integral == 65  # Simpson-64

    def test_romberg_evals(self):
        spec = WorkloadSpec(method="romberg", k=7)
        assert spec.evals_per_integral == 129

    @pytest.mark.parametrize(
        "kwargs",
        [dict(n_points=0), dict(bins_per_level=0), dict(method="gauss")],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestIonGranularity:
    def test_task_count(self, small_spec):
        tasks = build_tasks(small_spec)
        assert len(tasks) == 2 * 36  # 2 points x 36 ions (z_max=8)

    def test_task_ids_dense(self, small_spec):
        tasks = build_tasks(small_spec)
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_integrals_match_level_counts(self, small_spec):
        db = AtomicDatabase(small_spec.db_config)
        tasks = build_tasks(small_spec, db=db)
        for task in tasks[:36]:
            ion = next(i for i in db.ions if f"/{i.name}" in task.label)
            assert task.n_integrals == db.n_levels(ion) * 100
            assert task.n_levels == db.n_levels(ion)

    def test_points_tagged(self, small_spec):
        tasks = build_tasks(small_spec)
        assert {t.point_index for t in tasks} == {0, 1}

    def test_kind(self, small_spec):
        assert all(t.kind is TaskKind.ION for t in build_tasks(small_spec))


class TestLevelGranularity:
    def test_task_count_equals_total_levels(self, small_spec):
        from dataclasses import replace

        spec = replace(small_spec, granularity=Granularity.LEVEL)
        db = AtomicDatabase(spec.db_config)
        tasks = build_tasks(spec, db=db)
        assert len(tasks) == 2 * db.total_levels()
        assert all(t.n_levels == 1 for t in tasks)
        assert all(t.kind is TaskKind.LEVEL for t in tasks)

    def test_same_total_integrals_as_ion(self, small_spec):
        from dataclasses import replace

        ion_total = sum(t.n_integrals for t in build_tasks(small_spec))
        level_total = sum(
            t.n_integrals
            for t in build_tasks(replace(small_spec, granularity=Granularity.LEVEL))
        )
        assert ion_total == level_total


class TestElementGranularity:
    def test_one_task_per_element(self, small_spec):
        from dataclasses import replace

        spec = replace(small_spec, granularity=Granularity.ELEMENT)
        tasks = build_tasks(spec)
        assert len(tasks) == 2 * 8  # 2 points x 8 elements
        assert all(t.kind is TaskKind.ELEMENT for t in tasks)

    def test_same_total_integrals_as_ion(self, small_spec):
        from dataclasses import replace

        ion_total = sum(t.n_integrals for t in build_tasks(small_spec))
        elem_total = sum(
            t.n_integrals
            for t in build_tasks(replace(small_spec, granularity=Granularity.ELEMENT))
        )
        assert ion_total == elem_total


class TestExecuteFactories:
    def test_factories_attached(self, small_spec):
        calls = []

        def gpu_factory(ion, point):
            return lambda: calls.append(("gpu", ion.name, point))

        def cpu_factory(ion, point):
            return lambda: calls.append(("cpu", ion.name, point))

        tasks = build_tasks(
            small_spec, gpu_execute_factory=gpu_factory, cpu_execute_factory=cpu_factory
        )
        tasks[0].run_gpu()
        tasks[1].run_cpu()
        assert calls[0][0] == "gpu"
        assert calls[1][0] == "cpu"


class TestPaperScale:
    def test_paper_workload_task_count(self):
        tasks = build_tasks(WorkloadSpec(n_points=1))
        assert len(tasks) == 496

    def test_paper_workload_integrals_per_point(self):
        tasks = build_tasks(WorkloadSpec(n_points=1))
        total = sum(t.n_integrals for t in tasks)
        assert 1.5e8 < total < 3.0e8  # Fig. 1: "up to 2.0e8"
