"""Per-device TaskQueue invariants."""

import pytest

from repro.cluster.sharedmem import SharedSegment
from repro.core.queue import TaskQueue


@pytest.fixture()
def seg():
    return SharedSegment(2)


class TestTaskQueue:
    def test_occupy_release_cycle(self, seg):
        q = TaskQueue(seg, 0, max_length=2)
        q.occupy()
        assert q.load == 1
        assert q.history == 1
        q.release()
        assert q.load == 0
        assert q.history == 1

    def test_is_full(self, seg):
        q = TaskQueue(seg, 0, max_length=2)
        assert not q.is_full
        q.occupy()
        q.occupy()
        assert q.is_full

    def test_occupy_beyond_bound_raises_and_rolls_back(self, seg):
        q = TaskQueue(seg, 0, max_length=1)
        q.occupy()
        with pytest.raises(RuntimeError):
            q.occupy()
        assert q.load == 1  # rolled back
        assert q.history == 1

    def test_release_below_zero_raises_and_rolls_back(self, seg):
        q = TaskQueue(seg, 0, max_length=1)
        with pytest.raises(RuntimeError):
            q.release()
        assert q.load == 0

    def test_queues_independent_per_device(self, seg):
        q0 = TaskQueue(seg, 0, max_length=4)
        q1 = TaskQueue(seg, 1, max_length=4)
        q0.occupy()
        assert q0.load == 1
        assert q1.load == 0

    def test_device_index_validated(self, seg):
        with pytest.raises(ValueError):
            TaskQueue(seg, 5, max_length=2)

    def test_max_length_validated(self, seg):
        with pytest.raises(ValueError):
            TaskQueue(seg, 0, max_length=0)

    def test_history_monotone_across_many_cycles(self, seg):
        q = TaskQueue(seg, 0, max_length=3)
        last = 0
        for _ in range(10):
            q.occupy()
            assert q.history > last or q.history == last + 1
            last = q.history
            q.release()
        assert q.history == 10
