"""Multi-node partitioning and scaling behaviour."""

import pytest

from repro.atomic.database import AtomicConfig
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig
from repro.core.multinode import MultiNodeConfig, MultiNodeRunner


@pytest.fixture(scope="module")
def tasks_8pt():
    return build_tasks(
        WorkloadSpec(n_points=8, bins_per_level=2_000, db_config=AtomicConfig.tiny())
    )


def node_cfg(**over):
    base = dict(n_workers=2, n_gpus=1, max_queue_length=4)
    base.update(over)
    return HybridConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_nodes=0),
            dict(interconnect_latency_s=-1.0),
            dict(interconnect_bandwidth_bs=0.0),
            dict(bytes_per_task_result=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MultiNodeConfig(**kwargs)


class TestPartition:
    def test_points_kept_whole(self, tasks_8pt):
        runner = MultiNodeRunner(MultiNodeConfig(n_nodes=3, node=node_cfg()))
        parts = runner.partition(tasks_8pt)
        assert len(parts) == 3
        for node_index, part in enumerate(parts):
            for task in part:
                assert task.point_index % 3 == node_index
        assert sum(len(p) for p in parts) == len(tasks_8pt)


class TestRun:
    def test_all_nodes_complete_everything(self, tasks_8pt):
        runner = MultiNodeRunner(MultiNodeConfig(n_nodes=2, node=node_cfg()))
        result = runner.run(tasks_8pt)
        total = sum(r.metrics.total_tasks for r in result.node_results)
        assert total == len(tasks_8pt)
        assert result.makespan_s > 0.0

    def test_two_nodes_roughly_halve_time(self, tasks_8pt):
        one = MultiNodeRunner(MultiNodeConfig(n_nodes=1, node=node_cfg())).run(tasks_8pt)
        two = MultiNodeRunner(MultiNodeConfig(n_nodes=2, node=node_cfg())).run(tasks_8pt)
        assert one.makespan_s / two.makespan_s == pytest.approx(2.0, rel=0.15)

    def test_comm_cost_included(self, tasks_8pt):
        cheap = MultiNodeRunner(
            MultiNodeConfig(n_nodes=2, node=node_cfg(), interconnect_latency_s=0.0,
                            bytes_per_task_result=0)
        ).run(tasks_8pt)
        costly = MultiNodeRunner(
            MultiNodeConfig(n_nodes=2, node=node_cfg(), interconnect_latency_s=5.0)
        ).run(tasks_8pt)
        assert costly.makespan_s > cheap.makespan_s + 9.0

    def test_more_nodes_than_points(self, tasks_8pt):
        """Empty nodes are tolerated and contribute nothing."""
        runner = MultiNodeRunner(MultiNodeConfig(n_nodes=10, node=node_cfg()))
        result = runner.run(tasks_8pt)
        total = sum(r.metrics.total_tasks for r in result.node_results)
        assert total == len(tasks_8pt)

    def test_imbalance_metric(self, tasks_8pt):
        # 8 points over 3 nodes: 3/3/2 -> measurable imbalance.
        res = MultiNodeRunner(
            MultiNodeConfig(n_nodes=3, node=node_cfg(n_workers=1))
        ).run(tasks_8pt)
        assert res.imbalance() > 0.0
        assert res.slowest_node in (0, 1)

    def test_deterministic(self, tasks_8pt):
        cfg = MultiNodeConfig(n_nodes=2, node=node_cfg())
        a = MultiNodeRunner(cfg).run(tasks_8pt)
        b = MultiNodeRunner(cfg).run(tasks_8pt)
        assert a.makespan_s == b.makespan_s


class TestFederatedTelemetry:
    def _cfg(self, n_nodes=4):
        return MultiNodeConfig(n_nodes=n_nodes, node=node_cfg())

    def test_scraping_builds_per_node_stores(self, tasks_8pt):
        result = MultiNodeRunner(self._cfg()).run(
            tasks_8pt, scrape_cadence_s=0.5
        )
        assert set(result.stores) == {"0", "1", "2", "3"}
        assert all(s.n_scrapes > 0 for s in result.stores.values())

    def test_federated_store_carries_node_labels(self, tasks_8pt):
        result = MultiNodeRunner(self._cfg()).run(
            tasks_8pt, scrape_cadence_s=0.5
        )
        fed = result.federated_store()
        nodes = {dict(s.key[1]).get("node") for s in fed.series()}
        assert nodes == {"0", "1", "2", "3"}
        # Member stores survive federation untouched.
        for store in result.stores.values():
            assert all("node" not in dict(s.key[1]) for s in store.series())

    def test_plain_run_has_no_stores(self, tasks_8pt):
        result = MultiNodeRunner(self._cfg()).run(tasks_8pt)
        assert result.stores is None
        with pytest.raises(ValueError, match="not asked to scrape"):
            result.federated_store()

    def test_scraping_is_pure_observation(self, tasks_8pt):
        runner = MultiNodeRunner(self._cfg())
        bare = runner.run(tasks_8pt)
        scraped = runner.run(tasks_8pt, scrape_cadence_s=0.5)
        assert scraped.makespan_s == bare.makespan_s
        assert [r.makespan_s for r in scraped.node_results] == [
            r.makespan_s for r in bare.node_results
        ]
