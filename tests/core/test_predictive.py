"""Predictive dispatch: measured-cost placement + work stealing.

The contract under test: the predictive scheduler prices *placement*
but must never change an *answer* — spectra are bit-identical to the
depth scheduler's, with stealing on or off — and the shared-segment
bookkeeping conserves every slot, tick, steal, and donation.
"""

import numpy as np
import pytest

from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec


def _skewed_tasks(n_points=18, tasks_per_point=6, heavy_every=7):
    """A heavy-tail mix: every ``heavy_every``-th task is a large
    low-efficiency kernel among cheap ones."""
    tasks = []
    tid = 0
    for p in range(n_points):
        for i in range(tasks_per_point):
            heavy = (tid % heavy_every) == 0
            n_levels = 120 if heavy else 4
            label = f"pt{p}/{'Heavy' if heavy else 'Light'}+{i % 2}"
            arr = np.full(12, float(tid % 7) + 0.5)
            kern = KernelSpec.for_ion_task(
                n_levels=n_levels,
                n_bins=200,
                evals_per_integral=65,
                label=label,
                efficiency=0.1 if heavy else 1.0,
                execute=(lambda a=arr: a),
            )
            tasks.append(
                Task(
                    task_id=tid,
                    kind=TaskKind.ION,
                    kernel=kern,
                    point_index=p,
                    n_levels=n_levels,
                    cpu_execute=(lambda a=arr: a),
                    label=label,
                    method="simpson",
                )
            )
            tid += 1
    return tasks


_HOST = CostModel(
    point_overhead_s=0.0,
    prep_fixed_s=1.0e-4,
    prep_per_level_s=1.0e-6,
    submit_overhead_s=1.0e-4,
)


def _config(**kw):
    base = dict(
        n_workers=12,
        n_gpus=3,
        max_queue_length=8,
        cost=_HOST,
        stagger_s=0.001,
    )
    base.update(kw)
    return HybridConfig(**base)


@pytest.fixture(scope="module")
def tasks():
    return _skewed_tasks()


@pytest.fixture(scope="module")
def depth_result(tasks):
    return HybridRunner(_config(scheduler_kind="shared")).run(tasks)


@pytest.fixture(scope="module")
def predictive_result(tasks):
    return HybridRunner(_config(scheduler_kind="predictive")).run(tasks)


class TestBitIdentity:
    def test_spectra_match_depth_scheduler(self, depth_result, predictive_result):
        assert set(depth_result.spectra) == set(predictive_result.spectra)
        for p in depth_result.spectra:
            np.testing.assert_array_equal(
                depth_result.spectra[p], predictive_result.spectra[p]
            )

    def test_spectra_match_with_stealing_off(self, tasks, predictive_result):
        no_steal = HybridRunner(
            _config(scheduler_kind="predictive", steal=False)
        ).run(tasks)
        assert no_steal.metrics.total_steals == 0
        for p in predictive_result.spectra:
            np.testing.assert_array_equal(
                predictive_result.spectra[p], no_steal.spectra[p]
            )

    def test_deterministic_replay(self, tasks, predictive_result):
        again = HybridRunner(_config(scheduler_kind="predictive")).run(tasks)
        assert again.makespan_s == predictive_result.makespan_s
        assert again.metrics.total_steals == predictive_result.metrics.total_steals


class TestConservation:
    def test_every_task_runs_exactly_once(self, tasks, predictive_result):
        m = predictive_result.metrics
        assert m.total_tasks == len(tasks)

    def test_steals_equal_donations(self, predictive_result):
        m = predictive_result.metrics
        assert int(m.steals.sum()) == int(m.donations.sum())

    def test_stealing_engages_on_skewed_load(self, predictive_result):
        assert predictive_result.metrics.total_steals > 0

    def test_predictions_recorded_per_gpu_task(self, predictive_result):
        m = predictive_result.metrics
        assert len(m.predictions) == int(m.gpu_tasks.sum())
        assert all(meas > 0.0 for _pred, meas in m.predictions)


class TestCpuThreshold:
    def test_tight_threshold_forces_cpu_fallback(self, tasks, predictive_result):
        clipped = HybridRunner(
            _config(scheduler_kind="predictive", cpu_threshold_s=1.0e-4)
        ).run(tasks)
        assert clipped.metrics.cpu_tasks > predictive_result.metrics.cpu_tasks
        for p in predictive_result.spectra:
            np.testing.assert_array_equal(
                predictive_result.spectra[p], clipped.spectra[p]
            )


class TestConfigValidation:
    def test_predictive_rejects_async_depth(self):
        with pytest.raises(ValueError, match="async_depth"):
            _config(scheduler_kind="predictive", async_depth=2)

    def test_steal_flag_defaults_on(self):
        assert _config().steal is True
