"""The trace auditor: replay_trace against live runs and crafted traces."""

import pytest

from repro.atomic.database import AtomicConfig
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.metrics import TaskEvent
from repro.core.replay import replay_trace


@pytest.fixture(scope="module")
def audited_run():
    tasks = build_tasks(
        WorkloadSpec(n_points=2, bins_per_level=5_000, db_config=AtomicConfig.tiny())
    )
    cfg = HybridConfig(
        n_workers=4, n_gpus=2, max_queue_length=3, record_trace=True
    )
    return tasks, cfg, HybridRunner(cfg).run(tasks)


class TestAuditLiveRuns:
    def test_clean_run_passes(self, audited_run):
        tasks, cfg, result = audited_run
        report = replay_trace(
            result.metrics.trace,
            max_queue_length=cfg.max_queue_length,
            n_expected_tasks=len(tasks),
        )
        assert report.ok, report.violations
        assert report.n_gpu + report.n_cpu == len(tasks)

    def test_occupancy_respects_bound(self, audited_run):
        _tasks, cfg, result = audited_run
        report = replay_trace(result.metrics.trace, cfg.max_queue_length)
        for device, peak in report.max_concurrent_per_device.items():
            assert peak <= cfg.max_queue_length

    def test_rank_busy_fractions_sane(self, audited_run):
        _tasks, _cfg, result = audited_run
        report = replay_trace(result.metrics.trace)
        assert report.rank_busy_fraction
        for frac in report.rank_busy_fraction.values():
            assert 0.0 < frac <= 1.0 + 1e-9

    def test_device_counts_match_metrics(self, audited_run):
        _tasks, _cfg, result = audited_run
        report = replay_trace(result.metrics.trace)
        for device, count in report.device_task_counts.items():
            assert count == int(result.metrics.gpu_tasks[device])


class TestAuditCraftedTraces:
    def test_detects_duplicate_ids(self):
        trace = [
            TaskEvent(0, 1, "cpu", -1, 0.0, 1.0),
            TaskEvent(1, 1, "cpu", -1, 0.0, 1.0),
        ]
        report = replay_trace(trace)
        assert not report.ok
        assert any("duplicate" in v for v in report.violations)

    def test_detects_rank_overlap(self):
        trace = [
            TaskEvent(0, 1, "cpu", -1, 0.0, 2.0),
            TaskEvent(0, 2, "cpu", -1, 1.0, 3.0),
        ]
        report = replay_trace(trace)
        assert any("overlapping" in v for v in report.violations)

    def test_detects_queue_bound_breach(self):
        trace = [
            TaskEvent(r, r, "gpu", 0, 0.0, 5.0) for r in range(4)
        ]
        report = replay_trace(trace, max_queue_length=2)
        assert any("exceeds the" in v for v in report.violations)

    def test_detects_incomplete_trace(self):
        trace = [TaskEvent(0, 0, "cpu", -1, 0.0, 1.0)]
        report = replay_trace(trace, n_expected_tasks=5)
        assert any("expected 5" in v for v in report.violations)

    def test_fallback_run_lengths(self):
        trace = [
            TaskEvent(0, 0, "gpu", 0, 0.0, 1.0),
            TaskEvent(0, 1, "cpu", -1, 1.0, 2.0),
            TaskEvent(0, 2, "cpu", -1, 2.0, 3.0),
            TaskEvent(0, 3, "gpu", 0, 3.0, 4.0),
            TaskEvent(0, 4, "cpu", -1, 4.0, 5.0),
        ]
        report = replay_trace(trace)
        assert report.fallback_runs == [2, 1]

    def test_empty_trace(self):
        report = replay_trace([])
        assert report.ok
        assert report.makespan_s == 0.0
