"""Task descriptors."""

import pytest

from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec


def make_task(**over):
    base = dict(
        task_id=0,
        kind=TaskKind.ION,
        kernel=KernelSpec(n_integrals=100, evals_per_integral=65),
        n_levels=4,
    )
    base.update(over)
    return Task(**base)


class TestTask:
    def test_n_integrals_from_kernel(self):
        assert make_task().n_integrals == 100

    def test_run_gpu_without_execute_returns_none(self):
        assert make_task().run_gpu() is None

    def test_run_gpu_with_execute(self):
        k = KernelSpec(n_integrals=1, evals_per_integral=1, execute=lambda: [1, 2])
        assert make_task(kernel=k).run_gpu() == [1, 2]

    def test_run_cpu(self):
        t = make_task(cpu_execute=lambda: "cpu-result")
        assert t.run_cpu() == "cpu-result"
        assert make_task().run_cpu() is None

    @pytest.mark.parametrize("kwargs", [dict(task_id=-1), dict(n_levels=-2)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            make_task(**kwargs)

    def test_kind_enum_values(self):
        assert TaskKind.ION.value == "ion"
        assert TaskKind.LEVEL.value == "level"
        assert TaskKind.ELEMENT.value == "element"
        assert TaskKind.NEI_CHUNK.value == "nei"

    def test_cpu_evals_override_default_none(self):
        assert make_task().cpu_evals_per_integral is None
        assert make_task(cpu_evals_per_integral=3600).cpu_evals_per_integral == 3600
