"""Execution backends: sharding, reduction, and map-order contracts."""

import numpy as np
import pytest

from repro.parallel.executor import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_jobs,
    get_backend,
    shard_items,
    shutdown_warm_pools,
    tree_reduce,
)
from repro.quadrature.batch import KERNEL_COUNTERS


def _square(x: int) -> int:
    return x * x


class TestGetBackend:
    def test_names(self):
        assert get_backend("serial").name == "serial"
        assert get_backend("thread", 2).name == "thread"
        assert get_backend("process", 2).name == "process"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("mpi")

    def test_bad_jobs_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            ThreadBackend(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
        assert get_backend("thread").jobs == default_jobs()
        assert get_backend("serial").jobs == 1


class TestMapOrder:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_results_in_submission_order(self, name):
        with get_backend(name, 2) as backend:
            assert backend.map(_square, list(range(17))) == [
                i * i for i in range(17)
            ]

    def test_close_is_idempotent_and_reusable(self):
        backend = ThreadBackend(2)
        assert backend.map(_square, [3]) == [9]
        backend.close()
        backend.close()
        # A closed backend lazily re-creates its pool on next use.
        assert backend.map(_square, [4]) == [16]
        backend.close()


class TestShardItems:
    def test_concatenation_preserves_order(self):
        items = list(range(23))
        shards = shard_items(items, 5)
        assert [x for s in shards for x in s] == items

    def test_near_equal_sizes(self):
        sizes = [len(s) for s in shard_items(list(range(23)), 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_independent_of_backend_and_jobs(self):
        # The split is a pure function of (len(items), n_shards).
        a = shard_items(list(range(100)), 8)
        b = shard_items(list(range(100)), 8)
        assert a == b

    def test_more_shards_than_items(self):
        shards = shard_items([1, 2, 3], 8)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_empty_items(self):
        assert shard_items([], 4) == []

    def test_zero_shards_raises(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_items([1], 0)


class TestTreeReduce:
    def test_matches_pairwise_rounds(self):
        rng = np.random.default_rng(7)
        parts = [rng.standard_normal(32) for _ in range(5)]
        # Manual pairwise rounds: ((p0+p1)+(p2+p3)) + p4.
        expected = ((parts[0] + parts[1]) + (parts[2] + parts[3])) + parts[4]
        np.testing.assert_array_equal(tree_reduce(parts), expected)

    def test_single_partial_passthrough(self):
        a = np.arange(4, dtype=np.float64)
        np.testing.assert_array_equal(tree_reduce([a]), a)

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(11)
        parts = [rng.standard_normal(64) for _ in range(7)]
        np.testing.assert_array_equal(tree_reduce(parts), tree_reduce(parts))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            tree_reduce([])


class TestProcessBackend:
    def test_module_level_function_roundtrip(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_square, [2, 3, 4]) == [4, 9, 16]

    def test_chunked_map_preserves_order(self):
        # Far more items than chunks: results must still arrive in
        # submission order after the chunk flatten.
        with ProcessBackend(2) as backend:
            assert backend.map(_square, list(range(53))) == [
                i * i for i in range(53)
            ]

    def test_chunked_map_books_counters(self):
        KERNEL_COUNTERS.reset()
        with ProcessBackend(2) as backend:
            backend.map(_square, list(range(23)))
        snap = KERNEL_COUNTERS.snapshot()
        # At most 4 x jobs chunks per call — one pickle round trip per
        # chunk, not per item.
        assert snap["map_items"] == 23
        assert 1 <= snap["map_chunks"] <= 8
        KERNEL_COUNTERS.reset()

    def test_empty_map_short_circuits(self):
        KERNEL_COUNTERS.reset()
        with ProcessBackend(2) as backend:
            assert backend.map(_square, []) == []
        snap = KERNEL_COUNTERS.snapshot()
        assert snap["map_chunks"] == 0 and snap["map_items"] == 0
        # No pool was created for the empty call.
        assert snap["pool_creates"] == 0
        KERNEL_COUNTERS.reset()


class TestWarmPools:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        shutdown_warm_pools()
        KERNEL_COUNTERS.reset()
        yield
        shutdown_warm_pools()
        KERNEL_COUNTERS.reset()

    def test_pool_survives_close_and_is_adopted(self):
        with ProcessBackend(1) as backend:
            assert backend.map(_square, [5]) == [25]
        # The workers are parked, not torn down: a second backend with
        # the same worker count adopts them instead of forking anew.
        with ProcessBackend(1) as backend:
            assert backend.map(_square, [6]) == [36]
        snap = KERNEL_COUNTERS.snapshot()
        assert snap["pool_creates"] == 1
        assert snap["pool_reuses"] == 1

    def test_different_worker_counts_get_distinct_pools(self):
        with ProcessBackend(1) as a:
            assert a.map(_square, [2]) == [4]
        with ProcessBackend(2) as b:
            assert b.map(_square, [3]) == [9]
        snap = KERNEL_COUNTERS.snapshot()
        assert snap["pool_creates"] == 2
        assert snap["pool_reuses"] == 0

    def test_shutdown_empties_registry(self):
        with ProcessBackend(1) as backend:
            assert backend.map(_square, [7]) == [49]
        shutdown_warm_pools()
        with ProcessBackend(1) as backend:
            assert backend.map(_square, [8]) == [64]
        assert KERNEL_COUNTERS.snapshot()["pool_creates"] == 2

    def test_thread_backend_unaffected(self):
        backend = ThreadBackend(2)
        assert backend.map(_square, [3]) == [9]
        backend.close()
        assert KERNEL_COUNTERS.snapshot()["pool_creates"] == 0
