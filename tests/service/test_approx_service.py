"""The lattice tier through the broker: budgets, bit-identity, booking."""

import numpy as np
import pytest

from repro.cluster.simclock import SimClock
from repro.service.broker import ServiceConfig, SpectrumBroker
from repro.service.requests import SpectrumRequest


def _config(**kw) -> ServiceConfig:
    base = dict(
        lattice_t_min_k=1.0e6,
        lattice_t_max_k=5.0e7,
        lattice_nodes=17,
        lattice_method="cubic",
    )
    base.update(kw)
    return ServiceConfig(**base)


def _submit(broker: SpectrumBroker, clock: SimClock, request: SpectrumRequest):
    ticket = broker.submit(request, lane="interactive")
    clock.run()
    return ticket


class TestRequestKey:
    def test_exact_canonical_is_unchanged_by_the_accuracy_field(self):
        # accuracy=0 requests must keep their pre-lattice canonical form
        # (and sha1 key) bit for bit — cache keys and golden traces
        # depend on it.
        req = SpectrumRequest(temperature_k=1.0e7)
        assert req.canonical() == (
            "T=1.000000000e+07|ne=1.000000000e+00|z=8|bins=64|"
            "rule=simpson|tol=1.000e-06|tt=0.000e+00"
        )
        assert "acc=" not in req.canonical()

    def test_positive_accuracy_enters_the_key(self):
        exact = SpectrumRequest(temperature_k=1.0e7)
        budgeted = SpectrumRequest(temperature_k=1.0e7, accuracy=1.0e-3)
        assert budgeted.canonical().endswith("|acc=1.000e-03")
        assert budgeted.key != exact.key

    def test_negative_accuracy_rejected(self):
        with pytest.raises(ValueError, match="accuracy"):
            SpectrumRequest(temperature_k=1.0e7, accuracy=-1.0e-3)

    def test_family_ignores_temperature_and_accuracy(self):
        a = SpectrumRequest(temperature_k=1.0e6, accuracy=1.0e-3)
        b = SpectrumRequest(temperature_k=4.7e7, accuracy=1.0e-5)
        assert a.family_canonical() == b.family_canonical()
        assert a.family_key == b.family_key
        assert "T=" not in a.family_canonical()

    def test_family_tracks_shape_knobs(self):
        a = SpectrumRequest(temperature_k=1.0e6, n_bins=64)
        b = SpectrumRequest(temperature_k=1.0e6, n_bins=32)
        assert a.family_key != b.family_key


class TestConfigValidation:
    def test_bad_method(self):
        with pytest.raises(ValueError, match="lattice_method"):
            ServiceConfig(lattice_method="spline")

    def test_bad_domain(self):
        with pytest.raises(ValueError, match="lattice"):
            ServiceConfig(lattice_t_min_k=1.0e8, lattice_t_max_k=1.0e6)


class TestExactPathUntouched:
    def test_accuracy_zero_is_bit_identical_with_tier_disabled(self):
        request = SpectrumRequest(temperature_k=1.3e7)
        results = []
        for lattice in (True, False):
            clock = SimClock()
            broker = SpectrumBroker(clock, _config(lattice=lattice))
            broker.start()
            results.append(_submit(broker, clock, request).result)
        np.testing.assert_array_equal(results[0], results[1])

    def test_accuracy_zero_never_constructs_the_store(self):
        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        ticket = _submit(broker, clock, SpectrumRequest(temperature_k=1.3e7))
        assert not ticket.lattice
        assert broker.lattice_store is None
        lat = broker.report()["lattice"]
        assert lat["requests"] == 0
        assert lat["families"] == 0


class TestLatticeServing:
    def test_hit_within_budget_and_verified_against_exact(self):
        budget = 1.0e-3
        request = SpectrumRequest(temperature_k=1.3e7, accuracy=budget)
        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        ticket = _submit(broker, clock, request)
        assert ticket.done and ticket.lattice and not ticket.cached
        assert 0.0 < ticket.error_bound <= budget
        assert ticket.latency_s == 0.0

        # Re-verify the served spectrum against exact recomputation.
        exact_clock = SimClock()
        exact_broker = SpectrumBroker(exact_clock, _config(lattice=False))
        exact_broker.start()
        exact = _submit(
            exact_broker, exact_clock,
            SpectrumRequest(temperature_k=1.3e7),
        ).result
        err = float(np.max(np.abs(ticket.result - exact)) / exact.max())
        assert err <= ticket.error_bound <= budget

        report = broker.report()
        assert report["lattice"]["hits"] == 1
        assert report["lanes"]["interactive"]["lattice_hits"] == 1
        assert broker.lattice_store is not None

    def test_nearby_temperatures_share_one_build(self):
        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        for t in (1.1e7, 1.3e7, 1.7e7):
            ticket = _submit(
                broker, clock, SpectrumRequest(temperature_k=t, accuracy=1e-3)
            )
            assert ticket.lattice
        lat = broker.report()["lattice"]
        assert lat["builds"] == 1
        assert lat["hits"] == 3

    def test_uncertifiable_budget_falls_back_to_exact(self):
        request = SpectrumRequest(temperature_k=1.3e7, accuracy=1.0e-13)
        clock = SimClock()
        broker = SpectrumBroker(clock, _config(lattice_refine_max=0))
        broker.start()
        ticket = _submit(broker, clock, request)
        assert ticket.done and not ticket.lattice

        exact_clock = SimClock()
        exact_broker = SpectrumBroker(exact_clock, _config(lattice=False))
        exact_broker.start()
        exact = _submit(
            exact_broker, exact_clock, SpectrumRequest(temperature_k=1.3e7)
        ).result
        np.testing.assert_array_equal(ticket.result, exact)
        assert broker.report()["lattice"]["fallbacks"] == 1

    def test_out_of_domain_temperature_computes_exactly(self):
        request = SpectrumRequest(temperature_k=9.0e7, accuracy=1.0e-3)
        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        ticket = _submit(broker, clock, request)
        assert ticket.done and not ticket.lattice
        assert broker.report()["lattice"]["misses"] == 1


class TestPromExport:
    def test_lattice_families_render_zeroed_without_the_tier(self):
        from repro.obs.prom import service_registry

        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        _submit(broker, clock, SpectrumRequest(temperature_k=1.3e7))
        text = service_registry(broker).render()
        assert 'repro_approx_lattice_requests_total{result="hit"} 0' in text
        assert "repro_spectrum_cache_lookups_total" in text

    def test_lattice_outcomes_exported(self):
        from repro.obs.prom import parse_exposition, service_registry

        clock = SimClock()
        broker = SpectrumBroker(clock, _config())
        broker.start()
        _submit(
            broker, clock,
            SpectrumRequest(temperature_k=1.3e7, accuracy=1.0e-3),
        )
        families = parse_exposition(service_registry(broker).render())
        hits = {
            labels.get("result"): value
            for labels, value in families["repro_approx_lattice_requests_total"]
        }
        assert hits["hit"] == 1.0
        outcomes = {
            (labels.get("lane"), labels.get("outcome")): value
            for labels, value in families["repro_requests_total"]
        }
        assert outcomes[("interactive", "lattice_hit")] == 1.0
        assert families["repro_approx_lattice_builds_total"][0][1] == 1.0
