"""Cache behaviour: LRU order, TTL expiry, byte budget, counters."""

import numpy as np
import pytest

from repro.service.cache import ENTRY_OVERHEAD_BYTES, SpectrumCache


def arr(n=8, fill=1.0):
    return np.full(n, fill, dtype=np.float64)


class TestLRU:
    def test_hit_returns_stored_value(self):
        c = SpectrumCache(max_entries=4)
        c.put("a", arr(fill=3.0), now=0.0)
        np.testing.assert_array_equal(c.get("a", now=1.0), arr(fill=3.0))
        assert c.stats.hits == 1 and c.stats.misses == 0

    def test_miss_counted(self):
        c = SpectrumCache()
        assert c.get("absent", now=0.0) is None
        assert c.stats.misses == 1

    def test_evicts_least_recently_used(self):
        c = SpectrumCache(max_entries=2)
        c.put("a", arr(), now=0.0)
        c.put("b", arr(), now=1.0)
        c.get("a", now=2.0)  # refresh a; b becomes LRU
        c.put("c", arr(), now=3.0)
        assert "a" in c and "c" in c and "b" not in c
        assert c.stats.evictions == 1

    def test_put_refreshes_existing_entry(self):
        c = SpectrumCache(max_entries=4)
        c.put("a", arr(fill=1.0), now=0.0)
        c.put("a", arr(fill=2.0), now=1.0)
        assert len(c) == 1
        np.testing.assert_array_equal(c.get("a", now=2.0), arr(fill=2.0))


class TestTTL:
    def test_expires_on_access(self):
        c = SpectrumCache(ttl_s=10.0)
        c.put("a", arr(), now=0.0)
        assert c.get("a", now=5.0) is not None
        assert c.get("a", now=10.0) is None  # >= ttl
        assert c.stats.expirations == 1
        assert "a" not in c

    def test_sweep_purges_stale_entries(self):
        c = SpectrumCache(ttl_s=10.0)
        c.put("old", arr(), now=0.0)
        c.put("new", arr(), now=8.0)
        assert c.sweep(now=12.0) == 1
        assert "new" in c and "old" not in c
        assert c.stats.expirations == 1


class TestByteBudget:
    def test_sizeof_includes_overhead(self):
        assert SpectrumCache.sizeof(arr(8)) == 8 * 8 + ENTRY_OVERHEAD_BYTES

    def test_budget_enforced_by_eviction(self):
        entry = SpectrumCache.sizeof(arr(8))
        c = SpectrumCache(max_entries=100, max_bytes=2 * entry)
        c.put("a", arr(), now=0.0)
        c.put("b", arr(), now=1.0)
        c.put("c", arr(), now=2.0)
        assert len(c) == 2
        assert c.bytes_stored <= 2 * entry
        assert c.stats.evictions == 1
        assert "a" not in c

    def test_oversize_value_rejected_not_stored(self):
        c = SpectrumCache(max_bytes=64)
        assert c.put("big", arr(1024), now=0.0) is False
        assert "big" not in c
        assert c.stats.oversize_rejections == 1
        assert c.bytes_stored == 0

    def test_bytes_accounting_exact(self):
        c = SpectrumCache()
        c.put("a", arr(4), now=0.0)
        c.put("b", arr(16), now=0.0)
        expected = SpectrumCache.sizeof(arr(4)) + SpectrumCache.sizeof(arr(16))
        assert c.bytes_stored == expected


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_entries": 0}, {"max_bytes": 0}, {"ttl_s": 0.0}],
    )
    def test_rejects_degenerate_limits(self, kwargs):
        with pytest.raises(ValueError):
            SpectrumCache(**kwargs)

    def test_hit_ratio(self):
        c = SpectrumCache()
        c.put("a", arr(), now=0.0)
        c.get("a", now=0.0)
        c.get("b", now=0.0)
        assert c.stats.hit_ratio() == pytest.approx(0.5)
