"""Trace-context propagation through the broker: leaders and followers.

A coalesced follower performs no work of its own — its causal story is
"rode on the leader's compute".  The broker encodes that as a span link:
the follower's request root carries ``parent = leader.trace_id``, and
the ticket exposes ``leader_trace_id`` so clients can follow the edge
without parsing the trace.
"""

import numpy as np

from repro.cluster.simclock import SimClock
from repro.obs import EventTracer
from repro.service.broker import ServiceConfig, SpectrumBroker
from repro.service.requests import SpectrumRequest


def traced_broker(**over):
    clock = SimClock()
    tracer = EventTracer(clock)
    broker = SpectrumBroker(clock, ServiceConfig(**over), tracer=tracer)
    broker.start()
    return clock, broker, tracer


def req(t=1.0e7, **kw) -> SpectrumRequest:
    kw.setdefault("z_max", 4)
    kw.setdefault("n_bins", 16)
    return SpectrumRequest(temperature_k=t, **kw)


class TestFollowerLeaderLink:
    def test_follower_root_parents_under_leader(self):
        clock, broker, tracer = traced_broker()
        leader = broker.submit(req())
        follower = broker.submit(req())  # identical key, still in flight
        assert follower.coalesced
        clock.run()

        assert leader.trace_id > 0
        assert follower.trace_id > 0
        assert follower.trace_id != leader.trace_id
        assert follower.leader_trace_id == leader.trace_id
        assert leader.leader_trace_id == 0

        begins = {
            ev.id: ev
            for ev in tracer.events
            if ev.ph == "b" and ev.cat == "request"
        }
        assert begins[follower.trace_id].parent == leader.trace_id
        assert begins[follower.trace_id].args["outcome"] == "coalesced"
        assert begins[follower.trace_id].args["leader"] == leader.trace_id
        assert begins[leader.trace_id].parent is None

    def test_follower_ledger_entry_links_leader(self):
        clock, broker, _tracer = traced_broker()
        leader = broker.submit(req())
        follower = broker.submit(req())
        clock.run()
        result = broker.cost_report()
        by_id = {e.trace_id: e for e in result.entries}
        entry = by_id[follower.trace_id]
        assert entry.outcome == "coalesced"
        assert entry.leader == leader.trace_id
        assert sum(entry.ticks.values()) == 0
        assert sum(by_id[leader.trace_id].ticks.values()) > 0
        np.testing.assert_array_equal(leader.result, follower.result)

    def test_group_members_are_leader_roots(self):
        """Megabatch group spans list the member leaders' trace roots."""
        clock, broker, tracer = traced_broker(
            batch_max=4, batch_width_max=4, batch_window_s=0.05
        )
        tickets = [broker.submit(req(t)) for t in (8.0e6, 1.0e7, 1.25e7)]
        clock.run()
        groups = [
            ev for ev in tracer.events if ev.ph == "X" and ev.cat == "group"
        ]
        assert groups
        members = {m for g in groups for m in g.args["members"]}
        assert members == {t.trace_id for t in tickets}
        for g in groups:
            assert len(g.args["weights"]) == len(g.args["members"])
            assert g.args["width"] >= 1
            # The group span itself parents under its first member's root.
            assert g.parent == g.args["members"][0]

    def test_task_spans_parent_under_their_group(self):
        clock, broker, tracer = traced_broker(
            batch_max=4, batch_width_max=4, batch_window_s=0.05
        )
        for t in (8.0e6, 1.0e7):
            broker.submit(req(t))
        clock.run()
        group_ids = {
            ev.id for ev in tracer.events if ev.ph == "X" and ev.cat == "group"
        }
        tasks = [ev for ev in tracer.events if ev.ph == "X" and ev.cat == "task"]
        assert tasks
        for ev in tasks:
            assert ev.parent in group_ids
