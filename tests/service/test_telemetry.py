"""Service telemetry ledgers."""

import pytest

from repro.core.metrics import MetricsLedger, RunResult
from repro.service.telemetry import ServiceTelemetry


def batch_result(gpu=3, cpu=1, makespan=2.0) -> RunResult:
    m = MetricsLedger(1, 4)
    for _ in range(gpu):
        m.on_load_change(0, 0, 1, 0.0)
        m.on_load_change(0, 1, 0, 0.5)
    for _ in range(cpu):
        m.on_cpu_task()
    m.finalize(makespan)
    return RunResult(makespan_s=makespan, metrics=m, n_tasks=gpu + cpu)


class TestLanes:
    def test_unknown_lane_raises(self):
        t = ServiceTelemetry(("interactive",))
        with pytest.raises(ValueError, match="unknown lane"):
            t.on_arrival("survey")

    def test_lost_is_arrivals_minus_completions(self):
        t = ServiceTelemetry()
        for _ in range(3):
            t.on_arrival("survey")
        t.on_completion("survey", 1.0, cached=False, coalesced=False)
        assert t.lanes["survey"].lost == 2
        assert t.lost == 2

    def test_completion_classification(self):
        t = ServiceTelemetry()
        t.on_arrival("interactive")
        t.on_arrival("interactive")
        t.on_arrival("interactive")
        t.on_completion("interactive", 0.0, cached=True, coalesced=False)
        t.on_completion("interactive", 1.0, cached=False, coalesced=True)
        t.on_completion("interactive", 2.0, cached=False, coalesced=False)
        s = t.lanes["interactive"]
        assert (s.cache_hits, s.coalesced, s.computed) == (1, 1, 1)
        assert s.mean_latency_s() == pytest.approx(1.0)
        assert s.latency_percentile(50.0) == pytest.approx(1.0)


class TestQueueDepth:
    def test_time_weighted_mean(self):
        t = ServiceTelemetry()
        t.on_queue_depth(2, now=1.0)  # depth 0 over [0, 1)
        t.on_queue_depth(0, now=3.0)  # depth 2 over [1, 3)
        t.finalize(now=4.0)  # depth 0 over [3, 4)
        # (0*1 + 2*2 + 0*1) / 4 = 1.0
        assert t.mean_queue_depth() == pytest.approx(1.0)
        assert t.max_depth == 2

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            ServiceTelemetry().on_queue_depth(-1, now=0.0)


class TestBatchFold:
    def test_folds_hybrid_ledgers(self):
        t = ServiceTelemetry()
        t.on_batch(batch_result(gpu=3, cpu=1), n_requests=2)
        t.on_batch(batch_result(gpu=1, cpu=0), n_requests=1)
        assert t.gpu_tasks == 4 and t.cpu_tasks == 1
        assert t.gpu_task_ratio() == pytest.approx(0.8)
        assert t.batch_sizes == [2, 1]

    def test_as_dict_round_trips_to_json(self):
        import json

        t = ServiceTelemetry()
        t.on_arrival("interactive")
        t.on_completion("interactive", 0.5, cached=False, coalesced=False)
        t.on_batch(batch_result(), n_requests=1)
        t.finalize(now=1.0)
        d = json.loads(json.dumps(t.as_dict()))
        assert d["completions"] == 1
        assert d["lanes"]["interactive"]["computed"] == 1
