"""Seeded loadgen -> broker -> HybridRunner, end to end."""

import numpy as np
import pytest

from repro.service import ServiceConfig, TrafficSpec, generate_trace, run_trace
from repro.service.requests import ion_emission


@pytest.fixture(scope="module")
def small_run():
    trace = generate_trace(TrafficSpec(n_requests=60, seed=7, n_distinct=8))
    return trace, run_trace(trace)


class TestEndToEnd:
    def test_zero_lost_requests(self, small_run):
        _, (broker, tickets) = small_run
        assert broker.telemetry.lost == 0
        assert broker.telemetry.completions == 60
        assert all(t is not None and t.done for t in tickets)

    def test_cache_and_coalescer_exercised(self, small_run):
        _, (broker, _) = small_run
        assert broker.cache.stats.hits > 0
        assert broker.coalescer.coalesced > 0
        # Unique hybrid runs never exceed the distinct population.
        assert broker.cache.stats.insertions <= 8

    def test_results_match_direct_computation(self, small_run):
        trace, (broker, tickets) = small_run
        for arrival, ticket in zip(trace[:10], tickets[:10]):
            request = arrival.request
            expected = sum(
                ion_emission(ion, broker.db.n_levels(ion), request)
                for ion in broker.db.ions
                if ion.z <= request.z_max
            )
            np.testing.assert_allclose(ticket.result, expected, rtol=1e-12)

    def test_latencies_nonnegative_and_finite(self, small_run):
        _, (broker, tickets) = small_run
        for t in tickets:
            assert 0.0 <= t.latency_s < np.inf
        assert broker.telemetry.end_time > 0.0


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        spec = TrafficSpec(n_requests=40, seed=13, n_distinct=6)

        def run():
            broker, tickets = run_trace(generate_trace(spec))
            return broker.report(), [t.latency_s for t in tickets]

        (report_a, lat_a), (report_b, lat_b) = run(), run()
        assert report_a == report_b
        assert lat_a == lat_b

    def test_seed_changes_the_run(self):
        a, _ = run_trace(generate_trace(TrafficSpec(n_requests=40, seed=1)))
        b, _ = run_trace(generate_trace(TrafficSpec(n_requests=40, seed=2)))
        assert a.report() != b.report()


class TestBackpressureUnderLoad:
    def test_overload_rejects_but_loses_nothing(self):
        # A burst far above service capacity with a tiny queue: rejections
        # must occur, retries must recover every one of them.
        trace = generate_trace(
            TrafficSpec(
                n_requests=80,
                seed=3,
                mean_interarrival_s=0.001,
                n_distinct=40,
                pattern="uniform",
            )
        )
        config = ServiceConfig(queue_capacity=4, n_service_workers=1, batch_max=2)
        broker, tickets = run_trace(trace, config)
        assert broker.telemetry.rejections > 0
        assert broker.telemetry.retries > 0
        assert broker.telemetry.lost == 0
        assert all(t is not None and t.done for t in tickets)

    def test_ttl_expiry_forces_recomputation(self):
        # Two widely spaced hits on one key with a short TTL: the second
        # must recompute (expiration), not hit.
        trace = generate_trace(
            TrafficSpec(
                n_requests=2,
                seed=5,
                mean_interarrival_s=30.0,
                n_distinct=1,
            )
        )
        config = ServiceConfig(cache_ttl_s=5.0)
        broker, tickets = run_trace(trace, config)
        assert broker.cache.stats.expirations >= 1
        assert broker.cache.stats.insertions == 2
        assert all(t.done and not t.cached for t in tickets)
