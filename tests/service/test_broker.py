"""Broker semantics: coalescing, backpressure, lanes, batching."""

import numpy as np
import pytest

from repro.cluster.simclock import SimClock
from repro.service.broker import ServiceConfig, SpectrumBroker
from repro.service.requests import SpectrumRequest


def make_broker(**over) -> tuple[SimClock, SpectrumBroker]:
    clock = SimClock()
    broker = SpectrumBroker(clock, ServiceConfig(**over))
    broker.start()
    return clock, broker


def req(t=1.0e7, **kw) -> SpectrumRequest:
    kw.setdefault("z_max", 4)
    kw.setdefault("n_bins", 16)
    return SpectrumRequest(temperature_k=t, **kw)


class TestSubmit:
    def test_requires_start(self):
        broker = SpectrumBroker(SimClock())
        with pytest.raises(RuntimeError, match="not started"):
            broker.submit(req())

    def test_unknown_lane_rejected(self):
        _, broker = make_broker()
        with pytest.raises(ValueError, match="unknown lane"):
            broker.submit(req(), lane="batch")

    def test_miss_then_hit(self):
        clock, broker = make_broker()
        first = broker.submit(req())
        clock.run()
        assert first.done and not first.cached
        second = broker.submit(req())
        assert second.done and second.cached
        assert second.latency_s == 0.0
        np.testing.assert_array_equal(first.result, second.result)

    def test_cache_result_matches_direct_sum(self):
        from repro.service.requests import ion_emission

        clock, broker = make_broker()
        request = req()
        ticket = broker.submit(request)
        clock.run()
        expected = sum(
            ion_emission(ion, broker.db.n_levels(ion), request)
            for ion in broker.db.ions
            if ion.z <= request.z_max
        )
        np.testing.assert_allclose(ticket.result, expected, rtol=1e-12)


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_run(self):
        clock, broker = make_broker()
        leader = broker.submit(req())
        follower = broker.submit(req())
        assert not leader.coalesced and follower.coalesced
        assert follower.signal is leader.signal
        clock.run()
        assert leader.done and follower.done
        np.testing.assert_array_equal(leader.result, follower.result)
        assert broker.coalescer.coalesced == 1
        assert broker.cache.stats.insertions == 1  # one hybrid run total
        assert broker.telemetry.batch_sizes == [1]

    def test_different_requests_not_coalesced(self):
        clock, broker = make_broker()
        a = broker.submit(req(1.0e7))
        b = broker.submit(req(2.0e7))
        assert not a.coalesced and not b.coalesced
        clock.run()
        assert broker.coalescer.coalesced == 0
        assert broker.cache.stats.insertions == 2

    def test_coalesced_requests_bypass_backpressure(self):
        # Queue capacity 1: the duplicate attaches instead of rejecting.
        _, broker = make_broker(queue_capacity=1)
        leader = broker.submit(req())
        follower = broker.submit(req())
        assert not leader.rejected and follower.coalesced


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        _, broker = make_broker(queue_capacity=2, retry_after_s=0.25)
        admitted = [broker.submit(req(t)) for t in (1e6, 2e6)]
        overflow = broker.submit(req(3e6))
        assert all(not t.rejected for t in admitted)
        assert overflow.rejected
        assert overflow.retry_after_s == 0.25
        assert overflow.signal is None
        assert broker.telemetry.rejections == 1

    def test_rejected_request_succeeds_after_drain(self):
        clock, broker = make_broker(queue_capacity=1)
        broker.submit(req(1e6))
        overflow = broker.submit(req(2e6))
        assert overflow.rejected
        clock.run()  # queue drains
        retry = broker.submit(req(2e6), retry=True)
        assert not retry.rejected
        clock.run()
        assert retry.done
        assert broker.telemetry.retries == 1
        # A retry must not inflate the arrival count.
        assert broker.telemetry.arrivals == 2

    def test_queue_depth_telemetry(self):
        clock, broker = make_broker(queue_capacity=8)
        for t in (1e6, 2e6, 3e6):
            broker.submit(req(t))
        assert broker.queue_depth == 3
        clock.run()
        assert broker.queue_depth == 0
        broker.telemetry.finalize(clock.now)
        assert broker.telemetry.max_depth == 3


class TestLanesAndBatching:
    def test_interactive_drains_before_survey(self):
        clock, broker = make_broker(batch_max=1, n_service_workers=1)
        survey = broker.submit(req(1e6), lane="survey")
        inter = broker.submit(req(2e6), lane="interactive")
        clock.run()
        # Both complete, but the interactive request finished first even
        # though it arrived second.
        assert inter.done and survey.done
        assert inter.completed_at < survey.completed_at

    def test_batch_max_bounds_dispatch(self):
        clock, broker = make_broker(batch_max=2, n_service_workers=1)
        for t in (1e6, 2e6, 3e6, 4e6, 5e6):
            broker.submit(req(t))
        clock.run()
        assert sum(broker.telemetry.batch_sizes) == 5
        assert max(broker.telemetry.batch_sizes) <= 2

    def test_report_spans_all_ledgers(self):
        clock, broker = make_broker()
        broker.submit(req())
        clock.run()
        broker.submit(req())  # cache hit
        broker.telemetry.finalize(clock.now)
        report = broker.report()
        assert report["completions"] == 2
        assert report["cache"]["hits"] == 1
        assert report["cache"]["entries"] == 1
        assert report["coalescer"]["opened"] == 1
        assert report["gpu_tasks"] + report["cpu_tasks"] > 0
