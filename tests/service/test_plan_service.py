"""Plan cache and execution backends through the service layer."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.obs import service_registry
from repro.physics.plan import PLAN_CACHE, PlanCache
from repro.service import ServiceConfig, TrafficSpec, generate_trace, run_trace
from repro.service.requests import SpectrumRequest, compile_tasks


@pytest.fixture(scope="module")
def db() -> AtomicDatabase:
    return AtomicDatabase(AtomicConfig.tiny())


def _request(**kw) -> SpectrumRequest:
    base = dict(temperature_k=1.0e7, z_max=6, n_bins=32, tail_tol=1.0e-9)
    base.update(kw)
    return SpectrumRequest(**base)


class TestCompileTasksPlanCache:
    def test_second_compile_hits(self, db):
        cache = PlanCache()
        compile_tasks(_request(), db, plan_cache=cache)
        compile_tasks(_request(), db, plan_cache=cache)
        assert cache.stats.compilations == 1
        assert cache.stats.hits == 1

    def test_different_temperature_zero_new_compilations(self, db):
        cache = PlanCache()
        compile_tasks(_request(temperature_k=8.0e6), db, plan_cache=cache)
        compile_tasks(_request(temperature_k=1.6e7), db, plan_cache=cache)
        assert cache.stats.compilations == 1
        assert cache.stats.hits == 1

    def test_rule_or_tail_tol_recompiles(self, db):
        cache = PlanCache()
        compile_tasks(_request(), db, plan_cache=cache)
        compile_tasks(_request(rule="romberg"), db, plan_cache=cache)
        compile_tasks(_request(tail_tol=1.0e-6), db, plan_cache=cache)
        assert cache.stats.compilations == 3

    def test_unpruned_requests_skip_the_cache(self, db):
        cache = PlanCache()
        compile_tasks(_request(tail_tol=0.0), db, plan_cache=cache)
        assert cache.stats.lookups == 0

    def test_cost_only_tasks_price_identically(self, db):
        cache = PlanCache()
        priced = compile_tasks(_request(), db, plan_cache=cache)
        costed = compile_tasks(
            _request(), db, with_payload=False, plan_cache=cache
        )
        assert len(priced) == len(costed)
        for a, b in zip(priced, costed):
            assert a.kernel.n_integrals == b.kernel.n_integrals
            assert a.kernel.evals_saved == b.kernel.evals_saved
            assert a.kernel.total_evals == b.kernel.total_evals
            assert b.cpu_execute is None and b.kernel.execute is None
            assert a.cpu_execute is not None


class TestBrokerBackends:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TrafficSpec(n_requests=30, seed=7, n_distinct=6))

    @pytest.fixture(scope="class")
    def serial_tickets(self, trace):
        _, tickets = run_trace(trace, ServiceConfig())
        return tickets

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_spectra_bit_identical_to_serial(
        self, trace, serial_tickets, backend
    ):
        _, tickets = run_trace(
            trace, ServiceConfig(backend=backend, jobs=2)
        )
        assert len(tickets) == len(serial_tickets)
        for a, b in zip(serial_tickets, tickets):
            np.testing.assert_array_equal(a.result, b.result)

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ServiceConfig(backend="mpi")
        with pytest.raises(ValueError, match="jobs"):
            ServiceConfig(backend="thread", jobs=0)


class TestPlanMetricsExported:
    def test_plan_cache_counters_in_registry(self):
        trace = generate_trace(
            TrafficSpec(n_requests=10, seed=3, n_distinct=4, tail_tol=1.0e-9)
        )
        PLAN_CACHE.clear()
        broker, _ = run_trace(trace, ServiceConfig())
        text = service_registry(broker).render()
        assert "repro_plan_cache_lookups_total" in text
        assert "repro_plan_compilations_total" in text
        assert "repro_plan_cache_hit_ratio" in text
        # The pruned trace compiled at least one plan and reused it.
        assert PLAN_CACHE.stats.compilations >= 1
        assert PLAN_CACHE.stats.hits >= 1
