"""Predictive scheduling through the service layer.

The broker contract: switching the hybrid nodes to the predictive
scheduler (with work stealing) changes *when* tasks run, never *what*
they compute — every served spectrum is bit-identical to the depth
scheduler's, across all payload backends — and the per-batch steal /
donation ledgers stay conserved.  The cost model persists: a second
broker seeded from the first one's serialized model keeps refining the
same observation history.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.obs.attribution import CostModel
from repro.service.broker import ServiceConfig, _default_hybrid, run_trace
from repro.service.loadgen import TrafficSpec, generate_trace


def _trace():
    return generate_trace(
        TrafficSpec(
            n_requests=24,
            seed=7,
            mean_interarrival_s=0.02,
            burst=6,
            pattern="uniform",
            n_distinct=8,
            tail=0.35,
            tail_z_max=14,
        )
    )


def _config(**kw):
    hybrid = replace(_default_hybrid(), scheduler_kind="predictive")
    base = dict(n_service_workers=2, hybrid=hybrid)
    base.update(kw)
    return ServiceConfig(**base)


class TestPredictiveBroker:
    @pytest.fixture(scope="class")
    def trace(self):
        return _trace()

    @pytest.fixture(scope="class")
    def depth_tickets(self, trace):
        _, tickets = run_trace(trace, ServiceConfig(n_service_workers=2))
        return tickets

    @pytest.fixture(scope="class")
    def predictive_run(self, trace):
        return run_trace(trace, _config())

    def test_all_requests_served(self, trace, predictive_run):
        _, tickets = predictive_run
        assert len(tickets) == len(trace)
        assert all(t is not None and t.done for t in tickets)

    def test_spectra_bit_identical_to_depth(self, depth_tickets, predictive_run):
        _, tickets = predictive_run
        for a, b in zip(depth_tickets, tickets):
            np.testing.assert_array_equal(a.result, b.result)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_across_backends(
        self, trace, predictive_run, backend
    ):
        serial_broker, serial_tickets = predictive_run
        broker, tickets = run_trace(
            trace, _config(backend=backend, jobs=2)
        )
        for a, b in zip(serial_tickets, tickets):
            np.testing.assert_array_equal(a.result, b.result)
        # The virtual schedule — steals included — is backend-invariant.
        tel, stel = broker.telemetry, serial_broker.telemetry
        assert tel.sched_steals == stel.sched_steals
        assert tel.sched_donations == stel.sched_donations

    def test_steals_conserved(self, predictive_run):
        broker, _ = predictive_run
        tel = broker.telemetry
        assert sum(tel.sched_steals) == sum(tel.sched_donations)

    def test_report_carries_sched_keys(self, predictive_run):
        broker, _ = predictive_run
        report = broker.report()
        assert "sched_steals" in report
        assert "sched_prediction_error_mean" in report
        assert "sched_load_imbalance" in report

    def test_prediction_errors_collected(self, predictive_run):
        broker, _ = predictive_run
        assert broker.cost_model is not None
        assert broker.cost_model.n_observations > 0
        assert len(broker.telemetry.sched_prediction_errors) > 0


class TestCostModelPersistence:
    def test_round_trip_keeps_observation_history(self):
        trace = _trace()
        first, _ = run_trace(trace, _config())
        doc = first.cost_model.to_dict()
        restored = CostModel.from_dict(doc)
        assert restored.n_keys == first.cost_model.n_keys
        assert restored.n_observations == first.cost_model.n_observations

        second, _ = run_trace(trace, _config(), cost_model=restored)
        assert second.cost_model is restored
        assert (
            second.cost_model.n_observations
            > first.cost_model.n_observations
        )

    def test_depth_scheduler_has_no_model_by_default(self):
        trace = generate_trace(TrafficSpec(n_requests=6, seed=3, n_distinct=3))
        broker, _ = run_trace(trace, ServiceConfig(n_service_workers=1))
        assert broker.cost_model is None
