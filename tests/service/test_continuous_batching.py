"""Continuous batching: megabatch dispatch must be invisible in the bits.

The feature is a pure performance transform — fuse the compatible part
of a drained backlog into one launch — whose contract is that every
served spectrum stays bit-identical to one-request-at-a-time dispatch.
These tests pin that contract at each layer: group compilation, the
stacked family payload, the assembler's grouping rules, and the broker's
batched dispatch across every execution backend.
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.service import ServiceConfig, TrafficSpec, generate_trace, run_trace
from repro.service.batching import BatchAssembler
from repro.service.requests import (
    SpectrumRequest,
    compile_group_tasks,
    compile_tasks,
    family_spectra,
    request_spectrum,
)


@pytest.fixture(scope="module")
def db() -> AtomicDatabase:
    return AtomicDatabase(AtomicConfig.tiny())


def _request(**kw) -> SpectrumRequest:
    base = dict(temperature_k=1.0e7, z_max=6, n_bins=32)
    base.update(kw)
    return SpectrumRequest(**base)


def _group(*temps, **kw) -> tuple[SpectrumRequest, ...]:
    return tuple(_request(temperature_k=t, **kw) for t in temps)


class _Entry:
    """Assembler input stub: only ``request`` (and ``lane``) are read."""

    def __init__(self, request: SpectrumRequest, lane: str = "survey"):
        self.request = request
        self.lane = lane


class TestFamilyPayload:
    def test_rows_bit_identical_to_single_requests(self, db):
        group = _group(8.0e6, 1.0e7, 1.6e7, 3.0e7)
        n_max, z_max = db.config.n_max, db.config.z_max
        stacked = family_spectra((group, n_max, z_max))
        assert stacked.shape == (4, 32)
        for j, request in enumerate(group):
            single = request_spectrum((request, n_max, z_max))
            np.testing.assert_array_equal(stacked[j], single)

    def test_empty_group_is_empty(self, db):
        out = family_spectra(((), db.config.n_max, db.config.z_max))
        assert out.shape == (0, 0)


class TestCompileGroupTasks:
    def test_payload_rows_match_single_task_fold(self, db):
        group = _group(8.0e6, 2.0e7)
        gtasks = compile_group_tasks(group, db)
        for j, request in enumerate(group):
            singles = compile_tasks(request, db)
            for gtask, stask in zip(gtasks, singles):
                np.testing.assert_array_equal(
                    gtask.cpu_execute()[j], stask.cpu_execute()
                )

    def test_kernel_priced_as_fused_launch(self, db):
        group = _group(8.0e6, 1.0e7, 2.0e7)
        gtasks = compile_group_tasks(group, db)
        singles = compile_tasks(group[0], db)
        for gtask, stask in zip(gtasks, singles):
            # Output (integrals, result bytes) scales with width; the
            # per-level parameter upload is paid once for the group.
            assert gtask.kernel.n_integrals == 3 * stask.kernel.n_integrals
            assert gtask.kernel.bytes_out == 3 * stask.kernel.bytes_out
            assert gtask.kernel.bytes_in == stask.kernel.bytes_in

    def test_spread_assigns_one_point_per_task(self, db):
        group = _group(8.0e6, 2.0e7)
        spread = compile_group_tasks(group, db, point_index=5, spread=True)
        assert [t.point_index for t in spread] == [
            5 + i for i in range(len(spread))
        ]
        packed = compile_group_tasks(group, db, point_index=5)
        assert {t.point_index for t in packed} == {5}

    def test_mixed_family_rejected(self, db):
        with pytest.raises(ValueError, match="family"):
            compile_group_tasks(
                (_request(), _request(n_bins=64)), db
            )

    def test_empty_group_compiles_nothing(self, db):
        assert compile_group_tasks((), db) == []


class TestBatchAssembler:
    def test_groups_by_family_preserving_drain_order(self):
        a1, a2 = _request(temperature_k=8.0e6), _request(temperature_k=2.0e7)
        b1 = _request(temperature_k=1.0e7, n_bins=64)
        groups = BatchAssembler().assemble(
            [_Entry(a1), _Entry(b1), _Entry(a2)]
        )
        assert [g.width for g in groups] == [2, 1]
        assert groups[0].requests == (a1, a2)
        assert groups[1].requests == (b1,)

    def test_width_cap_spills_into_consecutive_groups(self):
        entries = [
            _Entry(_request(temperature_k=1.0e6 * (1 + i))) for i in range(5)
        ]
        groups = BatchAssembler(width_max=2).assemble(entries)
        assert [g.width for g in groups] == [2, 2, 1]

    def test_interactive_entries_keep_their_priority(self):
        hot = _Entry(_request(temperature_k=9.0e6), lane="interactive")
        cold = _Entry(_request(temperature_k=9.0e6, n_bins=64))
        groups = BatchAssembler().assemble([hot, cold])
        # Drain order put the interactive entry first; the assembler
        # must not reorder groups behind later-seen families.
        assert groups[0].lanes == ("interactive",)

    def test_width_validation(self):
        with pytest.raises(ValueError, match="width_max"):
            BatchAssembler(width_max=0)


class TestBrokerMegabatchIdentity:
    @pytest.fixture(scope="class")
    def trace(self):
        # Bursty arrivals over few distinct points: the shape that
        # actually produces multi-width megabatch groups.
        return generate_trace(
            TrafficSpec(
                n_requests=24,
                seed=13,
                n_distinct=8,
                burst=6,
                mean_interarrival_s=0.02,
                pattern="uniform",
            )
        )

    @pytest.fixture(scope="class")
    def unbatched_tickets(self, trace):
        _, tickets = run_trace(trace, ServiceConfig(n_service_workers=2))
        return tickets

    def _batched(self, trace, **kw):
        cfg = ServiceConfig(
            n_service_workers=2,
            batch_max=8,
            batch_width_max=8,
            batch_window_s=0.02,
            **kw,
        )
        return run_trace(trace, cfg)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_bit_identical_across_backends(
        self, trace, unbatched_tickets, backend
    ):
        extra = {} if backend == "serial" else {"backend": backend, "jobs": 2}
        broker, tickets = self._batched(trace, **extra)
        assert len(tickets) == len(unbatched_tickets)
        for a, b in zip(unbatched_tickets, tickets):
            np.testing.assert_array_equal(a.result, b.result)
        assert len(broker.telemetry.megabatch_widths) > 0

    def test_telemetry_books_widths_and_coalesced(self, trace):
        broker, _ = self._batched(trace)
        tel = broker.telemetry
        widths = tel.megabatch_widths
        assert max(widths) > 1
        assert tel.batched_temperatures == sum(widths)
        # Requests that shared a fused launch with at least one other.
        assert tel.batch_coalesced_requests == sum(
            w for w in widths if w > 1
        )
        report = broker.report()
        assert report["megabatch_groups"] == len(widths)
        assert report["batch_width_max"] == max(widths)

    def test_zero_window_still_batches_backlog(self, trace):
        # window=0 never waits, but whatever backlog a drain finds is
        # still fused — and the answers still match unbatched dispatch.
        broker, tickets = self._batched(trace)
        zero_broker, zero_tickets = run_trace(
            trace,
            ServiceConfig(
                n_service_workers=2,
                batch_max=8,
                batch_width_max=8,
                batch_window_s=0.0,
            ),
        )
        assert zero_broker.telemetry.batch_window_waits == 0
        for a, b in zip(tickets, zero_tickets):
            np.testing.assert_array_equal(a.result, b.result)

    def test_width_one_cap_degenerates_to_unbatched(
        self, trace, unbatched_tickets
    ):
        broker, tickets = run_trace(
            trace,
            ServiceConfig(
                n_service_workers=2,
                batch_max=8,
                batch_width_max=1,
                batch_window_s=0.0,
            ),
        )
        assert all(w == 1 for w in broker.telemetry.megabatch_widths)
        for a, b in zip(unbatched_tickets, tickets):
            np.testing.assert_array_equal(a.result, b.result)

    def test_config_validates_batching_knobs(self):
        with pytest.raises(ValueError, match="batch_window_s"):
            ServiceConfig(batch_window_s=-0.1)
        with pytest.raises(ValueError, match="batch_width_max"):
            ServiceConfig(batch_width_max=0)


class TestBatchedLatticeTier:
    def test_lattice_serving_unchanged_by_batching(self):
        trace = generate_trace(
            TrafficSpec(
                n_requests=20,
                seed=5,
                pattern="walk",
                accuracy=1.0e-3,
                burst=5,
                mean_interarrival_s=0.02,
            )
        )
        _, plain = run_trace(trace, ServiceConfig(n_service_workers=2))
        _, batched = run_trace(
            trace,
            ServiceConfig(
                n_service_workers=2,
                batch_max=8,
                batch_width_max=8,
                batch_window_s=0.02,
            ),
        )
        for a, b in zip(plain, batched):
            np.testing.assert_array_equal(a.result, b.result)
