"""Traffic generation: determinism, Poisson arrivals, Zipf skew."""

from collections import Counter

import numpy as np
import pytest

from repro.service.loadgen import TrafficSpec, generate_trace, zipf_weights


class TestDeterminism:
    def test_same_spec_same_trace(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=11))
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.key for x in a] == [x.request.key for x in b]
        assert [x.lane for x in a] == [x.lane for x in b]

    def test_different_seed_different_trace(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=12))
        assert [x.t for x in a] != [x.t for x in b]


class TestShape:
    def test_times_strictly_ascending(self):
        trace = generate_trace(TrafficSpec(n_requests=100, seed=3))
        times = [x.t for x in trace]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_close_to_spec(self):
        spec = TrafficSpec(n_requests=2000, seed=5, mean_interarrival_s=0.1)
        trace = generate_trace(spec)
        gaps = np.diff([0.0] + [x.t for x in trace])
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)

    def test_population_bounded(self):
        spec = TrafficSpec(n_requests=100, seed=5, n_distinct=4)
        keys = {x.request.key for x in generate_trace(spec)}
        assert len(keys) <= 4

    def test_lanes_follow_fraction(self):
        spec = TrafficSpec(n_requests=1000, seed=5, interactive_fraction=0.25)
        lanes = Counter(x.lane for x in generate_trace(spec))
        assert lanes["interactive"] == pytest.approx(250, abs=60)
        assert set(lanes) <= {"interactive", "survey"}


class TestZipf:
    def test_weights_normalized_and_monotone(self):
        w = zipf_weights(16, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert all(b < a for a, b in zip(w, w[1:]))

    def test_zipf_skews_toward_low_ranks(self):
        spec = TrafficSpec(n_requests=1000, seed=5, pattern="zipf", zipf_s=1.3)
        counts = Counter(x.request.key for x in generate_trace(spec))
        top = counts.most_common(1)[0][1]
        assert top > 1000 / spec.n_distinct * 2  # far above uniform share

    def test_uniform_pattern_flatter_than_zipf(self):
        base = dict(n_requests=1000, seed=5, n_distinct=16)
        zipf = Counter(
            x.request.key
            for x in generate_trace(TrafficSpec(pattern="zipf", zipf_s=1.3, **base))
        )
        uniform = Counter(
            x.request.key for x in generate_trace(TrafficSpec(pattern="uniform", **base))
        )
        assert max(zipf.values()) > max(uniform.values())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"mean_interarrival_s": 0.0},
            {"pattern": "burst"},
            {"zipf_s": 0.0},
            {"n_distinct": 0},
            {"interactive_fraction": 1.5},
            {"t_min_k": 0.0},
        ],
    )
    def test_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs)
