"""Traffic generation: determinism, Poisson arrivals, Zipf skew."""

from collections import Counter

import numpy as np
import pytest

from repro.service.loadgen import TrafficSpec, generate_trace, zipf_weights


class TestDeterminism:
    def test_same_spec_same_trace(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=11))
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.key for x in a] == [x.request.key for x in b]
        assert [x.lane for x in a] == [x.lane for x in b]

    def test_different_seed_different_trace(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=12))
        assert [x.t for x in a] != [x.t for x in b]


class TestShape:
    def test_times_strictly_ascending(self):
        trace = generate_trace(TrafficSpec(n_requests=100, seed=3))
        times = [x.t for x in trace]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_close_to_spec(self):
        spec = TrafficSpec(n_requests=2000, seed=5, mean_interarrival_s=0.1)
        trace = generate_trace(spec)
        gaps = np.diff([0.0] + [x.t for x in trace])
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)

    def test_population_bounded(self):
        spec = TrafficSpec(n_requests=100, seed=5, n_distinct=4)
        keys = {x.request.key for x in generate_trace(spec)}
        assert len(keys) <= 4

    def test_lanes_follow_fraction(self):
        spec = TrafficSpec(n_requests=1000, seed=5, interactive_fraction=0.25)
        lanes = Counter(x.lane for x in generate_trace(spec))
        assert lanes["interactive"] == pytest.approx(250, abs=60)
        assert set(lanes) <= {"interactive", "survey"}


class TestZipf:
    def test_weights_normalized_and_monotone(self):
        w = zipf_weights(16, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert all(b < a for a, b in zip(w, w[1:]))

    def test_zipf_skews_toward_low_ranks(self):
        spec = TrafficSpec(n_requests=1000, seed=5, pattern="zipf", zipf_s=1.3)
        counts = Counter(x.request.key for x in generate_trace(spec))
        top = counts.most_common(1)[0][1]
        assert top > 1000 / spec.n_distinct * 2  # far above uniform share

    def test_uniform_pattern_flatter_than_zipf(self):
        base = dict(n_requests=1000, seed=5, n_distinct=16)
        zipf = Counter(
            x.request.key
            for x in generate_trace(TrafficSpec(pattern="zipf", zipf_s=1.3, **base))
        )
        uniform = Counter(
            x.request.key for x in generate_trace(TrafficSpec(pattern="uniform", **base))
        )
        assert max(zipf.values()) > max(uniform.values())


class TestWalk:
    def test_deterministic(self):
        a = generate_trace(TrafficSpec(n_requests=80, seed=11, pattern="walk"))
        b = generate_trace(TrafficSpec(n_requests=80, seed=11, pattern="walk"))
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.temperature_k for x in a] == [
            x.request.temperature_k for x in b
        ]

    def test_temperatures_stay_in_domain(self):
        spec = TrafficSpec(
            n_requests=500, seed=9, pattern="walk", walk_sigma_dex=0.4
        )
        temps = np.array([x.request.temperature_k for x in generate_trace(spec)])
        assert np.all(temps >= spec.t_min_k)
        assert np.all(temps <= spec.t_max_k)

    def test_never_repeats_a_temperature_exactly(self):
        # The point of the walk: it defeats the exact cache, every
        # request is a fresh temperature.
        spec = TrafficSpec(n_requests=300, seed=9, pattern="walk")
        temps = [x.request.temperature_k for x in generate_trace(spec)]
        assert len(set(temps)) == len(temps)

    def test_steps_are_correlated_not_uniform(self):
        spec = TrafficSpec(n_requests=500, seed=9, pattern="walk")
        logs = np.log(
            [x.request.temperature_k for x in generate_trace(spec)]
        )
        span = np.log(spec.t_max_k) - np.log(spec.t_min_k)
        # Consecutive requests sit within a few step sigmas of each
        # other — far closer than independent uniform draws would be.
        assert np.median(np.abs(np.diff(logs))) < 0.05 * span

    def test_accuracy_is_stamped_on_requests(self):
        spec = TrafficSpec(
            n_requests=20, seed=3, pattern="walk", accuracy=1.0e-3
        )
        trace = generate_trace(spec)
        assert all(x.request.accuracy == 1.0e-3 for x in trace)
        assert all("acc=1.000e-03" in x.request.canonical() for x in trace)

    def test_exact_patterns_default_to_accuracy_zero(self):
        trace = generate_trace(TrafficSpec(n_requests=20, seed=3))
        assert all(x.request.accuracy == 0.0 for x in trace)

    def test_walk_fields_do_not_perturb_zipf_traces(self):
        # The golden service trace (zipf, seed 11) must not shift when
        # walk knobs are present but the pattern is not "walk".
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(
            TrafficSpec(n_requests=50, seed=11, walk_sigma_dex=0.9)
        )
        assert [x.request.key for x in a] == [x.request.key for x in b]
        assert [x.t for x in a] == [x.t for x in b]


class TestBurst:
    def test_burst_one_replays_legacy_trace_bit_for_bit(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=11, burst=1))
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.key for x in a] == [x.request.key for x in b]
        assert [x.lane for x in a] == [x.lane for x in b]

    def test_clusters_share_one_arrival_time(self):
        trace = generate_trace(TrafficSpec(n_requests=40, seed=3, burst=8))
        times = [x.t for x in trace]
        for i in range(0, 40, 8):
            assert len(set(times[i: i + 8])) == 1
        # Cluster times still strictly ascend.
        heads = times[::8]
        assert all(b > a for a, b in zip(heads, heads[1:]))

    def test_ragged_tail_keeps_request_count(self):
        trace = generate_trace(TrafficSpec(n_requests=21, seed=3, burst=8))
        assert len(trace) == 21

    def test_long_run_rate_is_preserved(self):
        # Cluster gaps have mean burst * interarrival, so n/T matches
        # the Poisson trace's rate within sampling noise.
        poisson = generate_trace(
            TrafficSpec(n_requests=400, seed=9, mean_interarrival_s=0.05)
        )
        bursty = generate_trace(
            TrafficSpec(
                n_requests=400, seed=9, mean_interarrival_s=0.05, burst=16
            )
        )
        rate_p = len(poisson) / poisson[-1].t
        rate_b = len(bursty) / bursty[-1].t
        assert rate_b == pytest.approx(rate_p, rel=0.35)

    def test_deterministic_per_spec(self):
        spec = TrafficSpec(n_requests=30, seed=4, burst=6)
        a, b = generate_trace(spec), generate_trace(spec)
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.key for x in a] == [x.request.key for x in b]


class TestHeavyTail:
    def test_tail_zero_replays_legacy_trace_bit_for_bit(self):
        a = generate_trace(TrafficSpec(n_requests=50, seed=11))
        b = generate_trace(TrafficSpec(n_requests=50, seed=11, tail=0.0))
        assert [x.t for x in a] == [x.t for x in b]
        assert [x.request.key for x in a] == [x.request.key for x in b]
        assert [x.lane for x in a] == [x.lane for x in b]

    def test_tail_draws_branch_after_legacy_draws(self):
        """Heavy-tail draws come last, so everything but z_max matches
        the tail=0 trace for the same seed."""
        base = generate_trace(TrafficSpec(n_requests=80, seed=7))
        tailed = generate_trace(TrafficSpec(n_requests=80, seed=7, tail=0.3))
        assert [x.t for x in base] == [x.t for x in tailed]
        assert [x.lane for x in base] == [x.lane for x in tailed]
        assert [x.request.temperature_k for x in base] == [
            x.request.temperature_k for x in tailed
        ]

    def test_tail_inflates_some_z_max_within_cap(self):
        spec = TrafficSpec(n_requests=200, seed=7, tail=0.3, tail_z_max=20)
        zs = [x.request.z_max for x in generate_trace(spec)]
        inflated = [z for z in zs if z != spec.z_max]
        assert inflated  # the tail engaged
        assert all(spec.z_max < z <= 20 for z in inflated)
        # Roughly the requested fraction of requests went heavy.
        assert len(inflated) / len(zs) == pytest.approx(0.3, abs=0.12)

    def test_tail_deterministic_per_spec(self):
        spec = TrafficSpec(n_requests=60, seed=4, tail=0.4)
        a, b = generate_trace(spec), generate_trace(spec)
        assert [x.request.z_max for x in a] == [x.request.z_max for x in b]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"mean_interarrival_s": 0.0},
            {"burst": 0},
            {"pattern": "burst"},
            {"zipf_s": 0.0},
            {"n_distinct": 0},
            {"interactive_fraction": 1.5},
            {"t_min_k": 0.0},
            {"walk_sigma_dex": 0.0},
            {"accuracy": -1.0e-3},
            {"tail": -0.1},
            {"tail": 1.0},
            {"tail_alpha": 0.0},
            {"tail": 0.2, "tail_z_max": 4},
        ],
    )
    def test_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs)
