"""Request typing, content addressing, and task compilation."""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.core.task import TaskKind
from repro.service.requests import SpectrumRequest, compile_tasks, ion_emission


@pytest.fixture(scope="module")
def db():
    return AtomicDatabase(AtomicConfig.tiny())


class TestValidation:
    def test_defaults_valid(self):
        SpectrumRequest(temperature_k=1e7)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature_k": 0.0},
            {"temperature_k": 1e7, "ne_cm3": -1.0},
            {"temperature_k": 1e7, "z_max": 0},
            {"temperature_k": 1e7, "n_bins": 0},
            {"temperature_k": 1e7, "rule": "magic"},
            {"temperature_k": 1e7, "tolerance": 0.0},
            {"temperature_k": 1e7, "tail_tol": -1e-9},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            SpectrumRequest(**kwargs)


class TestContentAddress:
    def test_equal_requests_equal_keys(self):
        a = SpectrumRequest(temperature_k=1.0e7, n_bins=64)
        b = SpectrumRequest(temperature_k=10_000_000.0, n_bins=64)
        assert a.key == b.key

    @pytest.mark.parametrize(
        "other",
        [
            {"temperature_k": 1.1e7},
            {"temperature_k": 1e7, "ne_cm3": 2.0},
            {"temperature_k": 1e7, "z_max": 6},
            {"temperature_k": 1e7, "n_bins": 32},
            {"temperature_k": 1e7, "rule": "romberg"},
            {"temperature_k": 1e7, "tolerance": 1e-8},
            {"temperature_k": 1e7, "tail_tol": 1e-9},
            {"temperature_k": 1e7, "tail_tol": 1e-6},
        ],
    )
    def test_any_field_changes_key(self, other):
        assert SpectrumRequest(temperature_k=1e7).key != SpectrumRequest(**other).key

    def test_key_stable_across_processes(self):
        # The address must be content-derived (no id()/hash randomization).
        req = SpectrumRequest(temperature_k=1e7)
        assert req.key == req.key
        assert len(req.key) == 40  # sha1 hex


class TestQuadraturePricing:
    def test_tighter_tolerance_costs_more(self):
        loose = SpectrumRequest(temperature_k=1e7, tolerance=1e-4)
        tight = SpectrumRequest(temperature_k=1e7, tolerance=1e-8)
        assert tight.evals_per_integral > loose.evals_per_integral

    def test_romberg_depth_bounded(self):
        req = SpectrumRequest(temperature_k=1e7, rule="romberg", tolerance=1e-30)
        assert req.evals_per_integral == 2**13 + 1


class TestCompileTasks:
    def test_one_task_per_ion_in_scope(self, db):
        req = SpectrumRequest(temperature_k=1e7, z_max=6)
        tasks = compile_tasks(req, db)
        expected = sum(1 for ion in db.ions if ion.z <= 6)
        assert len(tasks) == expected
        assert all(t.kind is TaskKind.ION for t in tasks)
        assert all(t.point_index == 0 for t in tasks)

    def test_task_ids_dense_from_base(self, db):
        req = SpectrumRequest(temperature_k=1e7, z_max=4)
        tasks = compile_tasks(req, db, point_index=3, task_id_base=10)
        assert [t.task_id for t in tasks] == list(range(10, 10 + len(tasks)))
        assert all(t.point_index == 3 for t in tasks)

    def test_rejects_out_of_scope_subset(self, db):
        req = SpectrumRequest(temperature_k=1e7, z_max=30)
        with pytest.raises(ValueError, match="exceeds database"):
            compile_tasks(req, db)

    def test_both_paths_same_answer(self, db):
        req = SpectrumRequest(temperature_k=1e7, z_max=4, n_bins=16)
        task = compile_tasks(req, db)[0]
        np.testing.assert_array_equal(task.run_gpu(), task.run_cpu())

    def test_emission_deterministic_and_positive(self, db):
        req = SpectrumRequest(temperature_k=1e7, n_bins=32)
        ion = db.ions[0]
        a = ion_emission(ion, db.n_levels(ion), req)
        b = ion_emission(ion, db.n_levels(ion), req)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (32,)
        assert np.all(a >= 0.0)

    def test_emission_scales_with_density(self, db):
        ion = db.ions[0]
        one = ion_emission(ion, 3, SpectrumRequest(temperature_k=1e7, ne_cm3=1.0))
        two = ion_emission(ion, 3, SpectrumRequest(temperature_k=1e7, ne_cm3=2.0))
        np.testing.assert_allclose(two, 2.0 * one)


class TestPrunedPricing:
    def test_tail_tol_shrinks_priced_workload(self, db):
        dense = compile_tasks(SpectrumRequest(temperature_k=1e7), db)
        pruned = compile_tasks(
            SpectrumRequest(temperature_k=1e7, tail_tol=1e-9), db
        )
        e_dense = sum(t.kernel.total_evals for t in dense)
        e_pruned = sum(t.kernel.total_evals for t in pruned)
        saved = sum(t.kernel.evals_saved for t in pruned)
        assert e_pruned < e_dense
        # The ledger must balance: active + saved == dense workload.
        assert e_pruned + saved == e_dense
        assert all(t.kernel.evals_saved == 0 for t in dense)

    def test_looser_tail_tol_saves_more(self, db):
        def saved(tt):
            tasks = compile_tasks(
                SpectrumRequest(temperature_k=1e6, tail_tol=tt), db
            )
            return sum(t.kernel.evals_saved for t in tasks)

        assert saved(1e-6) >= saved(1e-9) >= saved(1e-12)

    def test_pruning_never_changes_the_answer(self, db):
        import numpy as np

        dense = compile_tasks(SpectrumRequest(temperature_k=1e7), db)
        pruned = compile_tasks(
            SpectrumRequest(temperature_k=1e7, tail_tol=1e-9), db
        )
        for a, b in zip(dense, pruned):
            assert np.array_equal(a.kernel.execute(), b.kernel.execute())
