"""Physical constants and unit conversions."""

import math

import pytest

from repro import constants as c


class TestValues:
    def test_kt_at_1e7_kelvin(self):
        """kT(1e7 K) ~ 0.86 keV — the canonical hot-plasma scale."""
        assert c.kt_kev(1.0e7) == pytest.approx(0.8617, rel=1e-3)

    def test_rydberg(self):
        assert c.RYDBERG_KEV == pytest.approx(13.6057e-3, rel=1e-4)

    def test_hc(self):
        assert c.HC_KEV_ANGSTROM == pytest.approx(12.398, rel=1e-4)

    def test_electron_rest_mass(self):
        assert c.ME_C2_KEV == pytest.approx(511.0, rel=1e-3)

    def test_boltzmann_consistency(self):
        """K_B in keV/K and erg/K must agree through KEV_ERG."""
        assert c.K_B_KEV * c.KEV_ERG == pytest.approx(c.K_B_ERG, rel=1e-9)


class TestConversions:
    def test_wavelength_energy_roundtrip(self):
        for wl in (1.0, 12.398, 45.0):
            e = c.wavelength_to_energy_kev(wl)
            assert c.energy_to_wavelength_angstrom(e) == pytest.approx(wl)

    def test_known_anchor(self):
        """12.398 A <-> 1 keV."""
        assert c.wavelength_to_energy_kev(12.39841984) == pytest.approx(1.0)

    @pytest.mark.parametrize("fn", [c.wavelength_to_energy_kev, c.energy_to_wavelength_angstrom])
    def test_positive_input_required(self, fn):
        with pytest.raises(ValueError):
            fn(0.0)
        with pytest.raises(ValueError):
            fn(-1.0)

    def test_kt_requires_positive_temperature(self):
        with pytest.raises(ValueError):
            c.kt_kev(0.0)


class TestMaxwellianNorm:
    def test_scaling_with_temperature(self):
        """sqrt(1/(2 pi m kT)): halves when T quadruples... i.e. ~T^-1/2."""
        n1 = c.maxwellian_norm(1.0e6)
        n4 = c.maxwellian_norm(4.0e6)
        assert n1 / n4 == pytest.approx(2.0, rel=1e-12)

    def test_magnitude(self):
        # 1/sqrt(2 pi m_e k T) at 1e7 K in CGS ~ 1/sqrt(7.9e-37) ~ 1.1e18.
        val = c.maxwellian_norm(1.0e7)
        expected = 1.0 / math.sqrt(2.0 * math.pi * c.ME_G * c.K_B_ERG * 1.0e7)
        assert val == pytest.approx(expected, rel=1e-12)
