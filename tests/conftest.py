"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.core.calibration import CostModel
from repro.physics.apec import GridPoint
from repro.physics.spectrum import EnergyGrid


@pytest.fixture(scope="session")
def tiny_db() -> AtomicDatabase:
    """36 ions (Z <= 8), short level ladders — fast everywhere."""
    db = AtomicDatabase(AtomicConfig.tiny())
    db.validate()
    return db


@pytest.fixture(scope="session")
def small_db() -> AtomicDatabase:
    """The full 496-ion set with short ladders."""
    return AtomicDatabase(AtomicConfig.small())


@pytest.fixture(scope="session")
def des_db() -> AtomicDatabase:
    """The simulation-profile database (n_max = 5)."""
    return AtomicDatabase(AtomicConfig(n_max=5))


@pytest.fixture()
def grid_small() -> EnergyGrid:
    """50 bins over the paper's 10-45 Angstrom window."""
    return EnergyGrid.from_wavelength(10.0, 45.0, 50)


@pytest.fixture()
def hot_point() -> GridPoint:
    return GridPoint(temperature_k=1.0e7, ne_cm3=1.0)


@pytest.fixture()
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20150413)
