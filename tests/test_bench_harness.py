"""Benchmark harness: schema, determinism, regression gating."""

import json

import pytest

from repro.bench.harness import (
    CASES,
    DEFAULT_TOLERANCES,
    SCHEMA_ID,
    Tolerance,
    compare_bench,
    load_bench,
    run_suite,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_doc():
    """One quick suite run shared by the module (a few seconds)."""
    return run_suite(quick=True, seed=7)


class TestSuite:
    def test_all_cases_present_and_valid(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert set(quick_doc["cases"]) == set(CASES)
        for case in quick_doc["cases"].values():
            assert case["wall_s"] >= 0.0
            assert case["sim"]

    def test_sim_fields_bit_identical_across_runs(self, quick_doc):
        """The determinism contract: virtual-clock metrics never drift."""
        again = run_suite(quick=True, seed=7)
        sims_a = {k: v["sim"] for k, v in quick_doc["cases"].items()}
        sims_b = {k: v["sim"] for k, v in again["cases"].items()}
        assert sims_a == sims_b  # exact float equality, not approx

    def test_case_subset(self):
        doc = run_suite(quick=True, seed=7, cases=["nei"])
        assert list(doc["cases"]) == ["nei"]
        assert validate_bench(doc) == []

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown case"):
            run_suite(quick=True, cases=["no_such_case"])

    def test_flamegraph_side_channel(self, tmp_path):
        path = tmp_path / "bench.collapsed"
        run_suite(quick=True, seed=7, cases=["service_throughput"],
                  flamegraph=str(path))
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert len(stack.split(";")) >= 3

    def test_round_trips_through_disk(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_PERF.json"
        write_bench(str(path), quick_doc)
        assert load_bench(str(path)) == json.loads(path.read_text())


class TestSchema:
    def test_rejects_non_object(self):
        assert validate_bench([]) == ["document is not a JSON object"]

    def test_rejects_wrong_schema_id(self, quick_doc):
        doc = dict(quick_doc, schema="other/v9")
        assert any("schema" in e for e in validate_bench(doc))

    def test_rejects_missing_keys(self):
        errors = validate_bench({"schema": SCHEMA_ID})
        assert any("cases" in e for e in errors)
        assert any("seed" in e for e in errors)

    def test_rejects_bad_metric_types(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["cases"]["nei"]["sim"]["makespan_s"] = "fast"
        assert any("makespan_s" in e for e in validate_bench(doc))

    def test_rejects_negative_wall(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["cases"]["nei"]["wall_s"] = -1.0
        assert any("wall_s" in e for e in validate_bench(doc))

    def test_rejects_empty_cases(self, quick_doc):
        doc = dict(quick_doc, cases={})
        assert any("at least one case" in e for e in validate_bench(doc))

    def test_wall_metrics_is_optional(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["cases"]["fused_megabatch"].pop("wall_metrics", None)
        assert validate_bench(doc) == []

    def test_rejects_bad_wall_metrics(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["cases"]["fused_megabatch"]["wall_metrics"] = {"speedup": "big"}
        assert any("wall_metrics" in e for e in validate_bench(doc))
        doc["cases"]["fused_megabatch"]["wall_metrics"] = [1.0]
        assert any("wall_metrics" in e for e in validate_bench(doc))

    def test_wall_metrics_never_gate(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["cases"]["fused_megabatch"]["wall_metrics"]["parallel_speedup"] = 0.01
        regressions, _ = compare_bench(quick_doc, doc)
        assert regressions == []

    def test_load_bench_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match="schema validation"):
            load_bench(str(path))


class TestTolerance:
    def test_lower_is_better(self):
        t = Tolerance(0.02, "lower")
        assert not t.regressed(100.0, 101.0)  # within 2%
        assert t.regressed(100.0, 103.0)
        assert not t.regressed(100.0, 90.0)  # improvement

    def test_higher_is_better(self):
        t = Tolerance(0.02, "higher")
        assert not t.regressed(100.0, 99.0)
        assert t.regressed(100.0, 97.0)
        assert not t.regressed(100.0, 110.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tolerance(-0.1, "lower")
        with pytest.raises(ValueError):
            Tolerance(0.1, "sideways")

    def test_every_default_direction_is_sensible(self):
        times = {
            "makespan_s",
            "device_time_s",
            "virtual_time_s",
            "p95_latency_s",
            # A latency ratio: batched p95 over the unbatched baseline.
            "p95_vs_unbatched",
            # A makespan ratio: predictive over the depth scheduler.
            "makespan_vs_depth",
            # A prediction-error figure: mean |rel err| of the cost model.
            "cost_model_rel_err",
            # False alarms on a seeded steady trace: any increase regresses.
            "anomaly_false_positives",
        }
        for metric, tol in DEFAULT_TOLERANCES.items():
            expected = "lower" if metric in times else "higher"
            assert tol.direction == expected, metric


class TestCompare:
    def test_identical_docs_have_no_regressions(self, quick_doc):
        regressions, lines = compare_bench(quick_doc, quick_doc)
        assert regressions == []
        assert any("ok" in l for l in lines)

    def test_injected_regression_detected(self, quick_doc):
        worse = json.loads(json.dumps(quick_doc))
        worse["cases"]["nei"]["sim"]["makespan_s"] *= 1.10
        regressions, lines = compare_bench(quick_doc, worse)
        assert len(regressions) == 1
        reg = regressions[0]
        assert (reg.case, reg.metric) == ("nei", "makespan_s")
        assert any("REGRESSION" in l for l in lines)

    def test_throughput_drop_detected(self, quick_doc):
        worse = json.loads(json.dumps(quick_doc))
        worse["cases"]["service_throughput"]["sim"]["tasks_per_s"] *= 0.90
        regressions, _ = compare_bench(quick_doc, worse)
        assert any(r.metric == "tasks_per_s" for r in regressions)

    def test_improvement_never_gates(self, quick_doc):
        better = json.loads(json.dumps(quick_doc))
        better["cases"]["nei"]["sim"]["makespan_s"] *= 0.5
        better["cases"]["nei"]["sim"]["speedup_vs_mpi"] *= 2.0
        regressions, _ = compare_bench(quick_doc, better)
        assert regressions == []

    def test_wall_time_is_never_gated(self, quick_doc):
        worse = json.loads(json.dumps(quick_doc))
        for case in worse["cases"].values():
            case["wall_s"] *= 100.0  # a noisy CI machine
        regressions, _ = compare_bench(quick_doc, worse)
        assert regressions == []

    def test_new_case_notes_but_never_gates(self, quick_doc):
        grown = json.loads(json.dumps(quick_doc))
        grown["cases"]["brand_new"] = {"wall_s": 1.0, "sim": {"makespan_s": 9.9}}
        regressions, lines = compare_bench(quick_doc, grown)
        assert regressions == []
        assert any("new" in l and "brand_new" in l for l in lines)

    def test_quick_vs_full_mismatch_noted(self, quick_doc):
        full_ish = dict(quick_doc, quick=False)
        _, lines = compare_bench(quick_doc, full_ish)
        assert any("quick and full" in l for l in lines)
