"""NEI with real numerics through the hybrid scheduler.

The adaptability claim, executed rather than only priced: NEI tasks carry
the eigen-propagator as their GPU kernel and the adaptive LSODA-style
solver as the CPU fallback, and the states that come back through the
scheduler must match the matrix-exponential reference regardless of
placement.
"""

import numpy as np
import pytest

from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.nei.runner import NEIWorkloadSpec, attach_real_execution, build_nei_tasks
from repro.nei.solvers import exact_linear_solution


@pytest.fixture(scope="module")
def nei_setup():
    spec = NEIWorkloadSpec(
        n_grid_points=120, timesteps=50, points_per_task=10
    )
    tasks = build_nei_tasks(spec, n_partitions=4)
    ctx = attach_real_execution(tasks, spec)
    return spec, tasks, ctx


def reference_final(ctx, spec) -> np.ndarray:
    t_end = ctx["dt_s"] * spec.timesteps
    return exact_linear_solution(
        ctx["system"].matrix(), ctx["y0"], np.array([t_end])
    )[0]


class TestNEIRealExecution:
    def test_gpu_path_matches_expm(self, nei_setup):
        spec, tasks, ctx = nei_setup
        out = tasks[0].run_gpu()
        ref = reference_final(ctx, spec)
        assert out.shape == (spec.points_per_task, ctx["system"].dim)
        assert np.abs(out - ref[None, :]).max() < 1e-8

    def test_cpu_path_matches_expm(self, nei_setup):
        spec, tasks, ctx = nei_setup
        out = tasks[0].run_cpu()
        ref = reference_final(ctx, spec)
        assert np.abs(out - ref[None, :]).max() < 1e-5

    def test_through_the_scheduler(self, nei_setup):
        spec, tasks, ctx = nei_setup
        cost = CostModel(point_overhead_s=0.0)
        result = HybridRunner(
            HybridConfig(
                n_workers=4, n_gpus=1, max_queue_length=1,
                cost=cost, stagger_s=0.0,
            )
        ).run(tasks)
        # Mixed placement (tight queue forces fallbacks)...
        assert result.metrics.cpu_tasks > 0
        assert int(result.metrics.gpu_tasks.sum()) > 0
        # ...but every accumulated pack agrees with the exact solution.
        ref = reference_final(ctx, spec)
        n_tasks_per_partition = {
            p: sum(1 for t in tasks if t.point_index == p)
            for p in result.spectra
        }
        for p, acc in result.spectra.items():
            per_pack = acc / n_tasks_per_partition[p]
            assert np.abs(per_pack - np.tile(ref, (spec.points_per_task, 1))).max() < 1e-5

    def test_conservation_through_everything(self, nei_setup):
        spec, tasks, _ctx = nei_setup
        out = tasks[0].run_gpu()
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-9)
