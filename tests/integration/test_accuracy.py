"""The accuracy experiments (Figs. 7-8) with real numerics.

Serial QAGS reference vs the batched Simpson-64 "GPU" path, on a small
real database and the paper's 10-45 Angstrom window.
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.spectrum import EnergyGrid


@pytest.fixture(scope="module")
def accuracy_setup():
    db = AtomicDatabase(AtomicConfig(n_max=5, z_max=10))
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 60)
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    ions = db.ions[10:30]  # keep QAGS runtime modest
    ref = SerialAPEC(db, grid, method="qags").compute(point, ions=ions)
    gpu = SerialAPEC(db, grid, method="simpson-batch").compute(point, ions=ions)
    return ref, gpu


class TestFig7SpectraAgree:
    def test_normalized_fluxes_visually_identical(self, accuracy_setup):
        """Fig. 7a vs 7b: after peak normalization the two spectra are
        indistinguishable."""
        ref, gpu = accuracy_setup
        assert np.allclose(
            ref.normalized().values, gpu.normalized().values, atol=1e-9
        )

    def test_spectrum_nontrivial(self, accuracy_setup):
        ref, _ = accuracy_setup
        assert ref.total() > 0.0
        assert np.count_nonzero(ref.values) > ref.grid.n_bins // 2

    def test_wavelength_window(self, accuracy_setup):
        ref, _ = accuracy_setup
        wl = ref.grid.wavelength_centers
        assert wl.min() > 10.0 and wl.max() < 45.0


class TestFig8ErrorDistribution:
    def test_error_range_tiny(self, accuracy_setup):
        """Paper: relative errors within [-0.0003%, +0.0033%].  Our
        Simpson-64 bins are far inside that envelope."""
        ref, gpu = accuracy_setup
        err = gpu.relative_error_percent(ref)
        err = err[np.isfinite(err)]
        assert err.size > 0
        assert np.abs(err).max() < 3.3e-3  # the paper's worst case, in %

    def test_errors_concentrated_near_zero(self, accuracy_setup):
        """Paper: 'more than 99% errors are located in the interval of 0%
        to 0.0005%'."""
        ref, gpu = accuracy_setup
        err = gpu.relative_error_percent(ref)
        err = err[np.isfinite(err)]
        within = np.mean(np.abs(err) <= 5.0e-4)
        assert within > 0.99

    def test_no_systematic_bias_beyond_quadrature_order(self, accuracy_setup):
        ref, gpu = accuracy_setup
        err = gpu.relative_error_percent(ref)
        err = err[np.isfinite(err)]
        assert abs(np.mean(err)) < 1e-4  # percent
