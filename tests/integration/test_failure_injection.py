"""Failure injection: broken devices, leaked slots, poisoned queues."""

import numpy as np
import pytest

from repro.cluster.simclock import SimClock
from repro.core.metrics import MetricsLedger
from repro.core.scheduler import NO_DEVICE, SharedMemoryScheduler
from repro.gpusim.device import TESLA_C2075, SimulatedGPU
from repro.gpusim.kernel import KernelSpec


class TestDeviceFailure:
    def test_failed_device_strands_waiters(self):
        """A GPU dying mid-run leaves its waiter blocked — visible as an
        unfired completion signal, never a silent wrong result."""
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        done = gpu.submit(KernelSpec(n_integrals=1000, evals_per_integral=65))
        gpu.fail()
        clock.run()
        assert not done.fired

    def test_scheduler_can_route_around_failed_device(self):
        """Operational recovery: mark the dead device's queue as full by
        occupying its slots, and traffic flows to the survivor."""
        s = SharedMemoryScheduler(n_devices=2, max_queue_length=2)
        # Device 0 dies: poison its queue to capacity.
        while s.loads()[0] < 2:
            s.queues[0].occupy()
        for _ in range(2):
            assert s.sche_alloc() == 1
        assert s.sche_alloc() == NO_DEVICE  # both exhausted now


class TestQueueCorruption:
    def test_overfull_admission_detected(self):
        s = SharedMemoryScheduler(n_devices=1, max_queue_length=1)
        s.sche_alloc()
        # Corrupt the shared counter behind the scheduler's back.
        s.segment.load.store(0, 5)
        with pytest.raises(ValueError):
            s.validate()

    def test_negative_load_detected(self):
        s = SharedMemoryScheduler(n_devices=1, max_queue_length=4)
        s.segment.load.store(0, -3)
        with pytest.raises(ValueError):
            s.validate()

    def test_slot_leak_detected_by_runner(self):
        """The hybrid runner refuses to report success if queue slots
        leaked (every occupy must be matched by a release)."""
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner
        from repro.atomic.database import AtomicConfig

        tasks = build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=1000, db_config=AtomicConfig.tiny())
        )
        runner = HybridRunner(HybridConfig(n_workers=2, n_gpus=1, max_queue_length=2))

        class LeakyScheduler(SharedMemoryScheduler):
            def sche_free(self, device, now=0.0):
                pass  # leak every slot

        import repro.core.hybrid as hybrid_mod

        original = hybrid_mod.SharedMemoryScheduler
        hybrid_mod.SharedMemoryScheduler = LeakyScheduler
        try:
            with pytest.raises(RuntimeError, match="leaked"):
                runner.run(tasks)
        finally:
            hybrid_mod.SharedMemoryScheduler = original


class TestSolverFailureModes:
    def test_nei_solver_reports_nonconvergence(self):
        """A starved step budget yields success=False, not garbage."""
        from repro.nei.equilibrium import equilibrium_state
        from repro.nei.odes import NEISystem
        from repro.nei.solvers import AutoSwitchSolver

        sys_ = NEISystem(z=8, ne_cm3=1e10, temperature_k=1e6)
        y0 = equilibrium_state(8, 1e4)
        res = AutoSwitchSolver(rtol=1e-8, atol=1e-12, max_steps=3).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, 1e6)
        )
        assert not res.success
        assert res.message
        assert np.all(np.isfinite(res.y))

    def test_quadrature_nonconvergence_raises_on_demand(self):
        from repro.quadrature.qags import qags
        from repro.quadrature.result import QuadratureError

        f = lambda x: np.sin(1.0 / np.maximum(np.abs(x), 1e-12))
        res = qags(f, 0.0, 1.0, epsrel=1e-15, epsabs=1e-300, limit=2)
        assert not res.converged
        with pytest.raises(QuadratureError):
            res.require_converged()


class TestMetricsRobustness:
    def test_finalize_is_idempotent_enough(self):
        m = MetricsLedger(1, 2)
        m.on_load_change(0, 0, 1, 1.0)
        m.finalize(2.0)
        total_first = m.load_residency.sum()
        m.finalize(2.0)  # closing again at the same instant adds nothing
        assert m.load_residency.sum() == pytest.approx(total_first)


class TestEndToEndDeviceFailure:
    def _tasks(self):
        from repro.atomic.database import AtomicConfig
        from repro.core.granularity import WorkloadSpec, build_tasks

        return build_tasks(
            WorkloadSpec(n_points=1, bins_per_level=2_000, db_config=AtomicConfig.tiny())
        )

    def test_failure_before_any_submit_degrades_to_cpu(self, monkeypatch):
        """A device dead from t=0 refuses every submit; workers must fall
        back to CPU and the run must complete with nothing lost."""
        import repro.gpusim.device as dmod
        from repro.core.hybrid import HybridConfig, HybridRunner

        original_init = dmod.SimulatedGPU.__init__

        def dead_on_arrival(self, clock, spec, index=0):
            original_init(self, clock, spec, index)
            self.fail()

        monkeypatch.setattr(dmod.SimulatedGPU, "__init__", dead_on_arrival)
        tasks = self._tasks()
        result = HybridRunner(
            HybridConfig(n_workers=2, n_gpus=1, max_queue_length=2)
        ).run(tasks)
        assert result.metrics.cpu_tasks == len(tasks)
        assert result.metrics.gpu_task_ratio() == 0.0

    def test_failure_mid_service_detected_as_leak(self, monkeypatch):
        """A device dying *with a task in flight* strands the waiter; the
        runner must refuse to report success (leaked queue slots)."""
        import repro.gpusim.device as dmod
        from repro.core.granularity import WorkloadSpec, build_tasks
        from repro.core.hybrid import HybridConfig, HybridRunner
        from repro.atomic.database import AtomicConfig

        from repro.core.calibration import CostModel

        # Big bins -> first service window spans ~[0.07 s, 0.7 s]; the
        # device dies at t = 0.3 s with that task in flight.
        tasks = build_tasks(
            WorkloadSpec(
                n_points=1, bins_per_level=2_000_000,
                db_config=AtomicConfig.tiny(),
            )
        )[:4]
        original_init = dmod.SimulatedGPU.__init__

        def dies_mid_service(self, clock, spec, index=0):
            original_init(self, clock, spec, index)
            clock.at(0.3, self.fail)

        monkeypatch.setattr(dmod.SimulatedGPU, "__init__", dies_mid_service)
        with pytest.raises(RuntimeError, match="leaked"):
            HybridRunner(
                HybridConfig(
                    n_workers=2, n_gpus=1, max_queue_length=2,
                    stagger_s=0.0, cost=CostModel(point_overhead_s=0.0),
                )
            ).run(tasks)
