"""End-to-end: real spectra computed *through* the hybrid scheduler.

The strongest correctness statement in the reproduction: attach real
numerics to every task, push them through the discrete-event hybrid run
(GPU path = batched Simpson kernels, CPU fallback = scalar QAGS), and the
accumulated per-point spectra must equal the serial APEC calculation —
independent of scheduling order, queue bound, GPU count, or which tasks
happened to fall back to CPU.
"""

import numpy as np
import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.paramspace import Axis, ParameterSpace
from repro.physics.apec import (
    GridPoint,
    SerialAPEC,
    ion_emissivity_batched,
    ion_emissivity_scalar,
)
from repro.physics.spectrum import EnergyGrid


@pytest.fixture(scope="module")
def setup():
    db = AtomicDatabase(AtomicConfig.tiny())
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 40)
    space = ParameterSpace(
        temperature=Axis.log("temperature", 5e6, 2e7, 2),
        density=Axis.linear("density", 1.0, 1.0, 1),
    )
    return db, grid, space


def real_tasks(db, grid, space):
    """The workload with real execute callables on both paths."""

    def gpu_factory(ion, point_index):
        point = space.point(point_index)
        return lambda: ion_emissivity_batched(db, ion, point, grid)

    def cpu_factory(ion, point_index):
        point = space.point(point_index)
        # Scalar Simpson (not QAGS) keeps the test fast; numerically the
        # two CPU variants agree to 1e-12 anyway.
        return lambda: ion_emissivity_scalar(
            db, ion, point, grid, method="simpson"
        )

    spec = WorkloadSpec(
        n_points=len(space), bins_per_level=grid.n_bins,
        db_config=AtomicConfig.tiny(),
    )
    return build_tasks(
        spec, db=db, gpu_execute_factory=gpu_factory, cpu_execute_factory=cpu_factory
    )


class TestHybridProducesSerialSpectra:
    @pytest.mark.parametrize("n_gpus,maxlen", [(1, 1), (2, 4), (0, 2)])
    def test_scheduled_spectra_match_serial(self, setup, n_gpus, maxlen):
        db, grid, space = setup
        tasks = real_tasks(db, grid, space)
        runner = HybridRunner(
            HybridConfig(n_workers=4, n_gpus=n_gpus, max_queue_length=maxlen)
        )
        result = runner.run(tasks)

        assert set(result.spectra) == set(range(len(space)))
        apec = SerialAPEC(db, grid, method="simpson-batch")
        for point_index in range(len(space)):
            serial = apec.compute(space.point(point_index))
            hybrid = result.spectra[point_index]
            assert np.allclose(hybrid, serial.values, rtol=1e-10), (
                f"point {point_index} differs (n_gpus={n_gpus})"
            )

    def test_mixed_placement_still_exact(self, setup):
        """Force heavy CPU fallback (tiny queue, many workers): results
        must be identical even when placement is completely different."""
        db, grid, space = setup
        tasks = real_tasks(db, grid, space)
        # stagger 0: both ranks hit SCHE-ALLOC at the same instants, so
        # with one single-slot GPU one of them must take the CPU path.
        starved = HybridRunner(
            HybridConfig(
                n_workers=2, n_gpus=1, max_queue_length=1, stagger_s=0.0
            )
        ).run(tasks)
        roomy = HybridRunner(
            HybridConfig(n_workers=2, n_gpus=4, max_queue_length=8)
        ).run(tasks)
        assert starved.metrics.cpu_tasks > 0  # the premise: real fallback
        assert roomy.metrics.cpu_tasks < starved.metrics.cpu_tasks
        for point_index in starved.spectra:
            assert np.allclose(
                starved.spectra[point_index],
                roomy.spectra[point_index],
                rtol=1e-10,
            )


class TestParameterSpaceDrivenRun:
    def test_paper_space_end_to_end(self, setup):
        """The full pipeline: config -> space -> tasks -> hybrid -> result."""
        db, grid, _ = setup
        space = ParameterSpace.from_config(
            {
                "temperature": {"lo": 8e6, "hi": 1.2e7, "n": 2, "spacing": "log"},
                "density": [1.0],
            }
        )
        tasks = real_tasks(db, grid, space)
        result = HybridRunner(
            HybridConfig(n_workers=2, n_gpus=1, max_queue_length=4)
        ).run(tasks)
        assert result.metrics.total_tasks == len(tasks)
        for point_index, spectrum in result.spectra.items():
            assert np.all(spectrum >= 0.0)
            assert spectrum.sum() > 0.0
