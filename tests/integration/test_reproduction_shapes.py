"""The paper's qualitative claims, asserted end-to-end at full DES scale.

These are the headline shape checks: each test corresponds to a claim the
evaluation section makes, run on the same 24-point x 496-ion workload the
paper uses (cost-only simulation — real numerics are covered by
test_accuracy.py).  Marked slow: each hybrid run simulates ~12k tasks.
"""

import pytest

from repro.core.calibration import CostModel
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def ion_tasks():
    return build_tasks(WorkloadSpec())


@pytest.fixture(scope="module")
def serial_s(ion_tasks):
    return HybridRunner().serial_time(ion_tasks)


def run(tasks, **cfg):
    base = dict(n_gpus=3, max_queue_length=12)
    base.update(cfg)
    return HybridRunner(HybridConfig(**base)).run(tasks)


class TestBaselineClaims:
    def test_mpi_speedup_13_5(self, ion_tasks, serial_s):
        """'The MPI parallel version with 24 cores can only speed up the
        computation by a factor of 13.5.'"""
        mpi = HybridRunner().run_mpi_only(ion_tasks)
        assert serial_s / mpi.makespan_s == pytest.approx(13.5, rel=0.05)

    def test_serial_total_near_paper(self, ion_tasks, serial_s):
        """Figs. 3+4 jointly imply ~34.5 ks serial for the 24 points."""
        assert 30_000 < serial_s < 40_000


class TestFig3Claims:
    def test_ion_speedups_match_paper_shape(self, ion_tasks, serial_s):
        """Fig. 3 Ion line: large speedups, saturating after 3 GPUs."""
        speedups = {
            g: serial_s / run(ion_tasks, n_gpus=g).makespan_s for g in (1, 2, 3, 4)
        }
        paper = {1: 196.4, 2: 278.7, 3: 305.8, 4: 311.4}
        for g in speedups:
            assert speedups[g] == pytest.approx(paper[g], rel=0.25)
        # Monotone, and the 3->4 step is marginal (saturation).
        assert speedups[1] < speedups[2] < speedups[4] * 1.02
        assert speedups[4] / speedups[3] < 1.05

    def test_level_speedups_about_half_of_ion(self, serial_s, ion_tasks):
        """Fig. 3: the fine granularity loses roughly 2x everywhere."""
        level_tasks = build_tasks(WorkloadSpec(granularity=Granularity.LEVEL))
        for g in (1, 4):
            s_ion = serial_s / run(ion_tasks, n_gpus=g).makespan_s
            s_level = serial_s / run(level_tasks, n_gpus=g).makespan_s
            assert 1.3 < s_ion / s_level < 3.0

    def test_one_gpu_beats_24_core_mpi_by_an_order(self, ion_tasks, serial_s):
        """'a speed-up of ... 22 [over] the 24 CPU cores parallel version'
        (at 3 GPUs); even 1 GPU is ~10x the MPI version."""
        mpi = HybridRunner().run_mpi_only(ion_tasks)
        hybrid3 = run(ion_tasks, n_gpus=3)
        assert mpi.makespan_s / hybrid3.makespan_s > 15.0


class TestFig4Claims:
    @pytest.fixture(scope="class")
    def sweep(self, ion_tasks):
        return {
            (g, m): run(ion_tasks, n_gpus=g, max_queue_length=m).makespan_s
            for g in (1, 2, 3, 4)
            for m in (2, 6, 12)
        }

    def test_time_decreases_with_queue_length(self, sweep):
        for g in (1, 2, 3, 4):
            assert sweep[(g, 2)] > sweep[(g, 6)] >= sweep[(g, 12)] * 0.95

    def test_short_queue_penalty_largest_for_one_gpu(self, sweep):
        """Fig. 4: the maxlen-2 penalty shrinks as GPUs are added."""
        penalty = {g: sweep[(g, 2)] / sweep[(g, 12)] for g in (1, 2, 3, 4)}
        assert penalty[1] > penalty[2] > penalty[4]

    def test_3_and_4_gpus_nearly_identical_at_deep_queues(self, sweep):
        """'The total computing time between 3 GPUs and 4 GPUs is almost
        the same.'"""
        assert sweep[(4, 12)] == pytest.approx(sweep[(3, 12)], rel=0.05)

    def test_2_gpus_powerful_enough(self, sweep):
        """'2 GPUs is powerful enough to process the request from 24 CPU
        cores' — adding the 3rd GPU helps < 15% at deep queues."""
        assert sweep[(2, 12)] / sweep[(3, 12)] < 1.15


class TestFig5Claims:
    def test_gpu_ratio_high_and_increasing(self, ion_tasks):
        """Fig. 5: >= ~90% on GPUs even at maxlen 2, -> 100% at 14."""
        ratios = {
            m: run(ion_tasks, n_gpus=2, max_queue_length=m).metrics.gpu_task_ratio()
            for m in (2, 6, 14)
        }
        assert ratios[2] > 0.85
        assert ratios[2] < ratios[6] <= ratios[14]
        assert ratios[14] > 0.995


class TestTableIClaims:
    @pytest.fixture(scope="class")
    def romberg_runs(self):
        out = {}
        for k in (7, 9, 11, 13):
            tasks = build_tasks(
                WorkloadSpec(method="romberg", k=k, bins_per_level=25_000)
            )
            out[k] = run(tasks, n_gpus=2, max_queue_length=6)
        return out

    def test_gpu_share_degrades_with_task_cost(self, romberg_runs):
        """Table I: ratio falls from ~98% (k=7) to ~40% (k=13)."""
        ratios = {k: r.metrics.gpu_task_ratio() for k, r in romberg_runs.items()}
        assert ratios[7] > 0.95
        assert ratios[7] > ratios[9] > ratios[11] > ratios[13]
        assert 0.25 < ratios[13] < 0.55

    def test_load_mass_moves_right_with_k(self, romberg_runs):
        """Fig. 6: heavier tasks push device-0 load toward the bound."""
        top_share = {
            k: r.metrics.load_distribution_percent(0)[-1]
            for k, r in romberg_runs.items()
        }
        assert top_share[13] > top_share[7]
        assert top_share[13] > 40.0  # dominated by full-queue residency


class TestAblations:
    def test_client_server_scheduler_pays_overhead(self, ion_tasks):
        """Section II-B's MPS argument: per-request RPC latency hurts when
        tasks are small and scheduling frequent."""
        shared = run(ion_tasks, n_gpus=3).makespan_s
        served = HybridRunner(
            HybridConfig(
                n_gpus=3,
                max_queue_length=12,
                scheduler_kind="client-server",
                rpc_latency_s=5e-3,
            )
        ).run(ion_tasks).makespan_s
        assert served > shared * 1.02

    def test_async_submission_helps_starved_queues(self, ion_tasks):
        """The paper's future-work mode, quantified: with a short queue
        bound the synchronous GPU starves between submissions and async
        feeding recovers some of it; with deep queues async *hurts*
        slightly, because a rank holding several slots displaces other
        ranks to the CPU fallback."""
        sync2 = run(ion_tasks, n_gpus=1, max_queue_length=2).makespan_s
        async2 = HybridRunner(
            HybridConfig(n_gpus=1, max_queue_length=2, async_depth=4)
        ).run(ion_tasks).makespan_s
        assert async2 < sync2
        sync12 = run(ion_tasks, n_gpus=1, max_queue_length=12).makespan_s
        async12 = HybridRunner(
            HybridConfig(n_gpus=1, max_queue_length=12, async_depth=4)
        ).run(ion_tasks).makespan_s
        assert async12 <= sync12 * 1.15  # bounded regression

    def test_element_granularity_worse_than_ion(self, ion_tasks, serial_s):
        """The paper: 'the optimum granularity is ion, because if element
        is used ... the logic of the kernel will become more complex so
        that it is not suitable to run on GPU' — modelled as a kernel
        efficiency penalty; the end-to-end speedup must drop."""
        element_tasks = build_tasks(WorkloadSpec(granularity=Granularity.ELEMENT))
        s_ion = serial_s / run(ion_tasks, n_gpus=3).makespan_s
        s_elem = serial_s / run(element_tasks, n_gpus=3).makespan_s
        assert s_elem < s_ion
