"""The bench-harness utilities (workloads + reporting)."""

import pytest

from repro.bench.reporting import format_series, format_table, paper_vs_measured
from repro.bench.workloads import (
    paper_level_workload,
    paper_workload,
    romberg_workload,
    small_real_database,
    small_real_grid,
)
from repro.core.task import TaskKind


class TestWorkloads:
    def test_paper_workload_scale(self):
        tasks = paper_workload(n_points=2)
        assert len(tasks) == 2 * 496
        assert all(t.kind is TaskKind.ION for t in tasks)

    def test_level_workload_finer(self):
        level = paper_level_workload(n_points=1)
        ion = paper_workload(n_points=1)
        assert len(level) > len(ion)
        assert sum(t.n_integrals for t in level) == sum(t.n_integrals for t in ion)

    def test_romberg_workload_base_cost_matches_simpson(self):
        """The Table I premise: the k=7 task costs what a Simpson task
        costs (half the bins, double the evals per integral)."""
        simpson = paper_workload(n_points=1)
        romberg7 = romberg_workload(k=7, n_points=1)
        s_evals = sum(t.kernel.total_evals for t in simpson)
        r_evals = sum(t.kernel.total_evals for t in romberg7)
        assert r_evals == pytest.approx(s_evals, rel=0.01)

    def test_romberg_cost_doubles_per_k(self):
        e9 = sum(t.kernel.total_evals for t in romberg_workload(k=9, n_points=1))
        e11 = sum(t.kernel.total_evals for t in romberg_workload(k=11, n_points=1))
        assert e11 / e9 == pytest.approx(4.0, rel=0.01)

    def test_real_grid_window(self):
        grid = small_real_grid(100)
        wl = grid.wavelength_centers
        assert wl.min() > 10.0 and wl.max() < 45.0

    def test_real_database_modest(self):
        db = small_real_database()
        assert 50 < len(db.ions) < 496


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]}) == 1  # fixed width

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_merges_x(self):
        out = format_series(
            "x", {"s1": {1: 1.0, 2: 2.0}, "s2": {2: 4.0, 3: 9.0}}
        )
        assert "s1" in out and "s2" in out
        assert out.count("-") >= 2  # missing cells rendered as '-'

    def test_paper_vs_measured_ratio(self):
        out = paper_vs_measured("L", {1: 10.0}, {1: 12.0})
        assert "1.20x" in out

    def test_paper_vs_measured_missing_entry(self):
        out = paper_vs_measured("L", {1: 10.0, 2: 5.0}, {1: 10.0})
        assert "-" in out
