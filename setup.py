"""Setuptools shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that ``pip install -e .`` works on offline machines without the ``wheel``
package (legacy editable path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Accelerating Spectral Calculation through Hybrid "
        "GPU-based Computing' (ICPP 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
