"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the
corresponding workload through the simulator (or the real numerics for
the accuracy experiments), prints the same rows/series the paper reports
next to the paper's published values, asserts the reproduction's *shape*,
and writes the table to ``benchmarks/results/<name>.txt``.

Run with::

    pytest benchmarks/ --benchmark-only

(add ``-s`` to see the tables inline; they are always written to the
results directory regardless).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.workloads import paper_workload
from repro.core.hybrid import HybridRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def ion_tasks():
    """The paper's main workload: 24 points x 496 Ion tasks."""
    return paper_workload()


@pytest.fixture(scope="session")
def serial_seconds(ion_tasks) -> float:
    """Simulated serial-APEC wall time for the 24-point space."""
    return HybridRunner().serial_time(ion_tasks)


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a results table and persist it."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
