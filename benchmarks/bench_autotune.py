"""The automatic maximum-queue-length search (Section III-A).

"In practice, the scheduler chooses the maximum queue length through an
automatic test ... increasing the value of it gradually until the
performance inflexion occurs."  The bench builds the probe with
``probe_prefix`` (first ~60 tasks of every point, per-point overhead
scaled to the prefix fraction — see its docstring for why naive few-point
probes tune the wrong operating point) and verifies the tuned length
performs within a few percent of the best fixed setting on the *full*
24-point workload.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import paper_workload
from repro.core.autotune import autotune_queue_length, probe_prefix
from repro.core.hybrid import HybridConfig, HybridRunner

CANDIDATES = (2, 4, 6, 8, 10, 12, 14, 16)


def test_autotune_generalizes(benchmark, ion_tasks, results_dir):
    def tune_and_validate():
        out = {}
        for g in (1, 2):
            cfg = HybridConfig(n_gpus=g, max_queue_length=2)
            probe, probe_cfg = probe_prefix(ion_tasks, cfg, tasks_per_point=60)
            best, probe_times = autotune_queue_length(probe_cfg, probe, CANDIDATES)
            # Full-workload time at the tuned length vs the true optimum.
            full = {
                m: HybridRunner(
                    HybridConfig(n_gpus=g, max_queue_length=m)
                ).run(ion_tasks).makespan_s
                for m in CANDIDATES
            }
            out[g] = (best, probe_times, full)
        return out

    results = benchmark.pedantic(tune_and_validate, rounds=1, iterations=1)

    rows = []
    for g, (best, probe_times, full) in results.items():
        optimum = min(full, key=full.get)
        rows.append(
            [
                g,
                best,
                f"{full[best]:.1f}",
                optimum,
                f"{full[optimum]:.1f}",
                f"{full[best] / full[optimum] - 1.0:+.1%}",
                len(probe_times),
            ]
        )
    emit(
        results_dir,
        "autotune",
        format_table(
            ["GPUs", "tuned maxlen", "time @ tuned", "true optimum",
             "best time", "regret", "probe runs"],
            rows,
            title="Auto-tuning the maximum queue length (prefix probe, all ranks active)",
        ),
    )

    for g, (best, probe_times, full) in results.items():
        optimum = min(full, key=full.get)
        # The tuned choice costs at most 5% over the true optimum.
        assert full[best] <= full[optimum] * 1.05
        # And the probe stopped early (did not sweep every candidate).
        assert len(probe_times) <= len(CANDIDATES)
