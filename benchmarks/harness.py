#!/usr/bin/env python
"""Executable entry point for the unified benchmark harness.

Thin wrapper over :mod:`repro.bench.harness` (the implementation lives
in the package so the ``repro bench`` CLI subcommand can import it);
named ``harness.py`` — not ``bench_*.py`` — so pytest never collects it.

    PYTHONPATH=src python benchmarks/harness.py --quick
    PYTHONPATH=src python benchmarks/harness.py --compare old.json new.json
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
