"""Table I: task distribution between GPU and CPU vs task complexity.

Paper rows (2 GPUs, maxlen 6; "computation amount/task" = 2^k):

    amount  tasks-on-GPU  ratio     GPU-load>=3 time share
    2^7     6674          98.26%    37.85%
    2^9     6344          93.40%    65.46%
    2^11    4518          66.52%    70.76%
    2^13    2779          40.92%    66.64%

(The paper's absolute task totals imply a smaller point count than its
main experiment; the ratio columns are the comparable quantities.)
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table, paper_vs_measured
from repro.bench.workloads import romberg_workload
from repro.core.hybrid import HybridConfig, HybridRunner

PAPER_RATIO = {7: 98.26, 9: 93.40, 11: 66.52, 13: 40.92}
PAPER_LOAD3 = {7: 37.85, 9: 65.46, 11: 70.76, 13: 66.64}


def test_table1_task_distribution(benchmark, results_dir):
    def sweep():
        out = {}
        for k in PAPER_RATIO:
            tasks = romberg_workload(k)
            res = HybridRunner(
                HybridConfig(n_gpus=2, max_queue_length=6)
            ).run(tasks)
            out[k] = (
                int(res.metrics.gpu_tasks.sum()),
                res.metrics.gpu_task_ratio() * 100.0,
                res.metrics.load_at_least_ratio(3, device=0) * 100.0,
            )
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"2^{k}",
            measured[k][0],
            f"{measured[k][1]:.2f}% ({PAPER_RATIO[k]:.2f}%)",
            f"{measured[k][2]:.2f}% ({PAPER_LOAD3[k]:.2f}%)",
        ]
        for k in PAPER_RATIO
    ]
    text = "\n\n".join(
        [
            format_table(
                ["amount/task", "tasks on GPU", "ratio on GPU (paper)", "load>=3 (paper)"],
                rows,
                title="Table I — task distribution (2 GPUs, maxlen 6)",
            ),
            paper_vs_measured(
                "GPU task ratio (%)", PAPER_RATIO, {k: v[1] for k, v in measured.items()}
            ),
        ]
    )
    emit(results_dir, "table1_task_distribution", text)

    ratios = {k: v[1] for k, v in measured.items()}
    # The headline column: monotone degradation from ~98% to ~40%.
    assert ratios[7] > ratios[9] > ratios[11] > ratios[13]
    assert ratios[7] == pytest.approx(PAPER_RATIO[7], abs=3.0)
    assert ratios[13] == pytest.approx(PAPER_RATIO[13], abs=10.0)
    # Load>=3 share rises as tasks get heavier (k=7 vs the rest).
    assert measured[7][2] < measured[9][2]
