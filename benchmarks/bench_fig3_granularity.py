"""Fig. 3: speedup over serial APEC vs #GPUs, Ion vs Level granularity.

Paper series (speedup over the serial version):
    Ion   : 196.4 / 278.7 / 305.8 / 311.4   (1 / 2 / 3 / 4 GPUs)
    Level :  97.9 / 132.9 / 155.7 / 158.5
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_series, paper_vs_measured
from repro.bench.workloads import paper_level_workload
from repro.core.hybrid import HybridConfig, HybridRunner

PAPER_ION = {1: 196.4, 2: 278.7, 3: 305.8, 4: 311.4}
PAPER_LEVEL = {1: 97.9, 2: 132.9, 3: 155.7, 4: 158.5}


def _speedups(tasks, serial_s):
    out = {}
    for g in (1, 2, 3, 4):
        cfg = HybridConfig(n_gpus=g, max_queue_length=12)
        out[g] = serial_s / HybridRunner(cfg).run(tasks).makespan_s
    return out


@pytest.fixture(scope="module")
def level_tasks():
    return paper_level_workload()


def test_fig3_speedup_vs_gpus(
    benchmark, ion_tasks, level_tasks, serial_seconds, results_dir
):
    def sweep():
        return (
            _speedups(ion_tasks, serial_seconds),
            _speedups(level_tasks, serial_seconds),
        )

    ion, level = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = "\n\n".join(
        [
            format_series(
                "#GPUs",
                {
                    "Ion (paper)": PAPER_ION,
                    "Ion (measured)": ion,
                    "Level (paper)": PAPER_LEVEL,
                    "Level (measured)": level,
                },
                title="Fig. 3 — speedup over serial APEC by task granularity",
            ),
            paper_vs_measured("Ion granularity", PAPER_ION, ion),
            paper_vs_measured("Level granularity", PAPER_LEVEL, level),
        ]
    )
    emit(results_dir, "fig3_granularity", text)

    # Shape assertions: magnitudes within 25%, Ion ~2x Level, saturation.
    for g in (1, 2, 3, 4):
        assert ion[g] == pytest.approx(PAPER_ION[g], rel=0.25)
        assert level[g] == pytest.approx(PAPER_LEVEL[g], rel=0.35)
        assert 1.3 < ion[g] / level[g] < 3.0
    assert ion[4] / ion[3] < 1.05  # "not very helpful by simply adding more GPUs"
    assert ion[2] > ion[1] * 1.3
