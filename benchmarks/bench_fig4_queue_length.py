"""Fig. 4: total computing time of 24 grid points vs maximum queue length.

Paper series (seconds, 1-4 GPUs over maxlen 2..14):
    1 GPU : 356 251 221 194 186 176 179
    2 GPUs: 221 182 178 135 124 124 128
    3 GPUs: 184 124 119 155 119 114 117
    4 GPUs: 155 119 114 111 113 118 (111 @ 12)

The reproduction criterion is the *shape*: steep descent from maxlen 2,
plateau by 10-12, curves converging as GPUs are added (their own 3-GPU
row is visibly noisy — e.g. the 155 at maxlen 8).
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_series
from repro.core.hybrid import HybridConfig, HybridRunner

MAXLENS = (2, 4, 6, 8, 10, 12, 14)
PAPER = {
    1: dict(zip(MAXLENS, (356, 251, 221, 194, 186, 176, 179))),
    2: dict(zip(MAXLENS, (221, 182, 178, 135, 124, 124, 128))),
    3: dict(zip(MAXLENS, (184, 124, 119, 155, 119, 114, 117))),
    4: dict(zip(MAXLENS, (155, 119, 114, 111, 113, 118, 118))),
}


def test_fig4_queue_length_sweep(benchmark, ion_tasks, results_dir):
    def sweep():
        out = {}
        for g in (1, 2, 3, 4):
            out[g] = {
                m: HybridRunner(
                    HybridConfig(n_gpus=g, max_queue_length=m)
                ).run(ion_tasks).makespan_s
                for m in MAXLENS
            }
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Predictive-scheduler row at the paper's 3-GPU config: on the
    # paper's near-uniform workload, measured-cost placement must match
    # the depth scheduler (the win only appears under skewed costs —
    # see the ``predictive_scheduling`` harness case).
    predictive = {
        m: HybridRunner(
            HybridConfig(
                n_gpus=3, max_queue_length=m, scheduler_kind="predictive"
            )
        ).run(ion_tasks).makespan_s
        for m in MAXLENS
    }

    series = {}
    for g in (1, 2, 3, 4):
        series[f"{g} GPU paper"] = PAPER[g]
        series[f"{g} GPU measured"] = measured[g]
    series["3 GPU predictive"] = predictive
    text = format_series(
        "maxlen",
        series,
        title="Fig. 4 — total computing time (s) of 24 grid points",
    )
    emit(results_dir, "fig4_queue_length", text)

    # Equal-size tasks: predictive placement reduces to the depth rule,
    # so the whole curve stays in the depth scheduler's ballpark.
    for m in MAXLENS:
        assert predictive[m] == pytest.approx(measured[3][m], rel=0.15)

    # The maxlen-2 penalty shrinks as GPUs absorb more load (the paper's
    # own ratios: 2.0x / 1.8x / 1.6x / 1.3x for 1-4 GPUs).
    descent = {1: 1.8, 2: 1.5, 3: 1.25, 4: 1.15}
    for g in (1, 2, 3, 4):
        t = measured[g]
        # Steep descent from maxlen 2 to the plateau.
        assert t[2] > descent[g] * t[12]
        # Plateau: no large change from 10 -> 14.
        assert abs(t[14] - t[10]) / t[10] < 0.15
        # Magnitudes in the paper's ballpark at the optimum.
        assert t[12] == pytest.approx(PAPER[g][12], rel=0.30)
    # Curves converge with more GPUs: 3 ~ 4 at deep queues.
    assert measured[4][12] == pytest.approx(measured[3][12], rel=0.05)
