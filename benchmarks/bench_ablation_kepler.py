"""Ablation: Fermi (C2075) vs Kepler (K20) — the Hyper-Q discussion.

Section III-A: "application-level context switching is necessary on
Fermi, that is the queued tasks are performed serially ... Meanwhile, the
Hyper-Q technique can allow for up to 32 simultaneous connections from
multiple MPI processes on some Kepler GPUs, and this feature can get
higher effective GPU utilization.  So for some Kepler GPUs, the count of
active task may be more than one."

Two findings this bench quantifies (at 1 GPU, where the device — not the
host — binds, and with the K20's eval rate pinned to the C2075's so the
comparison isolates *architecture*, not silicon generation):

1. The optimal maximum queue length is architecture dependent — exactly
   the paper's "the maximum queue length depends on both the computing
   capability of the device and the application itself".  The Fermi
   optimum (12) starves a K20: Hyper-Q drains admitted work roughly 2x
   faster, so the same bound leaves the device idle between synchronous
   submission waves.  At the K20's own tuned bound (24) the device fills.
2. At each device's tuned bound, the fine (Level) granularity recovers
   more from Hyper-Q than the coarse (Ion) one — the per-client context
   switch it kept paying on Fermi is gone — so the Ion/Level gap narrows.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import paper_level_workload
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.gpusim.device import TESLA_C2075, TESLA_K20

#: Per-architecture tuned maximum queue length (what autotune finds).
TUNED_MAXLEN = {"C2075": 12, "K20": 24}


def test_ablation_fermi_vs_kepler(
    benchmark, ion_tasks, serial_seconds, results_dir
):
    level_tasks = paper_level_workload()
    k20_iso = TESLA_K20.with_eval_rate(TESLA_C2075.eval_rate)
    devices = {"C2075": TESLA_C2075, "K20": k20_iso}

    def sweep():
        out = {}
        for dev_name, dev in devices.items():
            for gran, tasks in (("ion", ion_tasks), ("level", level_tasks)):
                for maxlen in (12, 24):
                    cfg = HybridConfig(
                        n_gpus=1, max_queue_length=maxlen, device=dev
                    )
                    res = HybridRunner(cfg).run(tasks)
                    out[(dev_name, gran, maxlen)] = (
                        serial_seconds / res.makespan_s,
                        res.gpu_utilization[0],
                    )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for dev_name in devices:
        for gran in ("ion", "level"):
            for maxlen in (12, 24):
                spd, util = results[(dev_name, gran, maxlen)]
                tuned = "  <- tuned" if maxlen == TUNED_MAXLEN[dev_name] else ""
                rows.append([dev_name, gran, maxlen, f"{spd:.1f}", f"{util:.0%}{tuned}"])
    emit(
        results_dir,
        "ablation_kepler",
        format_table(
            ["device", "granularity", "maxlen", "speedup", "GPU util"],
            rows,
            title="Ablation — Fermi context switching vs Kepler Hyper-Q (1 GPU, equal eval rate)",
        ),
    )

    def tuned(dev, gran):
        return results[(dev, gran, TUNED_MAXLEN[dev])][0]

    # Finding 1: the Fermi-optimal bound starves the K20 on fine tasks.
    assert results[("K20", "level", 24)][0] > results[("K20", "level", 12)][0] * 1.3
    # while Fermi is insensitive between 12 and 24.
    f12, f24 = results[("C2075", "level", 12)][0], results[("C2075", "level", 24)][0]
    assert abs(f24 - f12) / f12 < 0.10
    # Finding 2: at tuned bounds, Level recovers more than Ion and the gap narrows.
    level_gain = tuned("K20", "level") / tuned("C2075", "level")
    ion_gain = tuned("K20", "ion") / tuned("C2075", "ion")
    assert level_gain > ion_gain
    gap_fermi = tuned("C2075", "ion") / tuned("C2075", "level")
    gap_kepler = tuned("K20", "ion") / tuned("K20", "level")
    assert gap_kepler < gap_fermi
