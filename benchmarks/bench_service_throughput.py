"""Service-layer throughput: broker + cache + coalescer over the runner.

This bench goes beyond the paper's batch experiments toward the
ROADMAP's serving target: a Zipf-skewed Poisson trace is played through
the admission broker at increasing offered load, and the report shows
how the reuse machinery (spectrum cache, in-flight coalescing) holds
completed-request throughput far above the raw compute capacity of the
worker nodes — while backpressure keeps the queue bounded and no
request is ever lost.

Asserted shape:
- every request completes (zero lost) at every offered load;
- the *reuse mix* shifts with offered load: spread-out arrivals land as
  cache hits, bursty arrivals overlap in flight and coalesce instead
  (total reuse is fixed by the Zipf population, not by the rate);
- sustained throughput (completions / virtual second) rises with
  offered load despite fixed compute capacity — the reuse win;
- with reuse disabled-by-population (every request unique, uniform),
  throughput saturates at compute capacity and backpressure engages.
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.service import ServiceConfig, TrafficSpec, generate_trace, run_trace

RATES = (5.0, 20.0, 80.0)  # offered requests / virtual second


def play(rate: float, pattern: str = "zipf", n_distinct: int = 32, **config_over):
    trace = generate_trace(
        TrafficSpec(
            n_requests=150,
            seed=7,
            mean_interarrival_s=1.0 / rate,
            pattern=pattern,
            n_distinct=n_distinct,
        )
    )
    broker, tickets = run_trace(trace, ServiceConfig(**config_over))
    return broker.report(), tickets


def test_service_throughput_under_zipf_load(benchmark, results_dir):
    def sweep():
        return {rate: play(rate) for rate in RATES}

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    reuse = {}
    hits = {}
    coalesces = {}
    throughput = {}
    for rate, (report, _tickets) in measured.items():
        served = report["completions"]
        hits[rate] = sum(s["cache_hits"] for s in report["lanes"].values())
        coalesces[rate] = sum(s["coalesced"] for s in report["lanes"].values())
        reuse[rate] = (hits[rate] + coalesces[rate]) / served
        throughput[rate] = served / report["virtual_time_s"]
        rows.append(
            [
                f"{rate:.0f}",
                served,
                report["lost"],
                report["rejections"],
                hits[rate],
                coalesces[rate],
                f"{reuse[rate]:.1%}",
                f"{report['queue_depth_mean']:.1f}",
                f"{throughput[rate]:.1f}",
            ]
        )
    text = format_table(
        ["offered req/s", "served", "lost", "rejected", "cache hits",
         "coalesced", "reuse", "mean depth", "served req/s"],
        rows,
        title="Service throughput — 150 requests, Zipf(1.1) over 32 points",
    )
    emit(results_dir, "service_throughput", text)

    for rate, (report, _tickets) in measured.items():
        assert report["lost"] == 0, f"lost requests at rate {rate}"
        assert report["completions"] == 150
    # The reuse mix shifts from cache hits to in-flight coalescing as the
    # arrival process compresses; throughput rises with offered load.
    assert hits[5.0] > hits[80.0]
    assert coalesces[80.0] > coalesces[5.0]
    assert throughput[80.0] > throughput[5.0]
    # At every rate, most requests are served without a hybrid run.
    assert min(reuse.values()) > 0.5


def test_unique_traffic_saturates_and_backpressures(results_dir):
    # Every request unique: no reuse available, tiny queue -> the broker
    # must reject (and retries must recover) rather than buffer unboundedly.
    report, tickets = play(
        80.0,
        pattern="uniform",
        n_distinct=150,
        queue_capacity=8,
        n_service_workers=1,
    )
    assert report["lost"] == 0
    assert report["rejections"] > 0
    assert report["retries"] >= report["rejections"] // 2
    assert all(t is not None and t.done for t in tickets)
    assert report["queue_depth_max"] <= 8
    text = format_table(
        ["quantity", "value"],
        [
            ["served", report["completions"]],
            ["rejections", report["rejections"]],
            ["retries", report["retries"]],
            ["max queue depth", report["queue_depth_max"]],
            ["reuse", f"{report['cache']['hit_ratio']:.1%}"],
        ],
        title="Unique uniform traffic, queue capacity 8 — pure backpressure",
    )
    emit(results_dir, "service_backpressure", text)


def test_priority_lane_latency_ordering(results_dir):
    # Interactive requests must see lower queueing latency than survey
    # traffic under contention.
    report, _ = play(40.0)
    inter = report["lanes"]["interactive"]
    survey = report["lanes"]["survey"]
    assert inter["lost"] == 0 and survey["lost"] == 0
    if inter["computed"] >= 3 and survey["computed"] >= 3:
        assert inter["latency_p95_s"] <= survey["latency_p95_s"] * 1.25
    text = format_table(
        ["lane", "mean latency (s)", "p95 latency (s)"],
        [
            ["interactive", f"{inter['latency_mean_s']:.3f}",
             f"{inter['latency_p95_s']:.3f}"],
            ["survey", f"{survey['latency_mean_s']:.3f}",
             f"{survey['latency_p95_s']:.3f}"],
        ],
        title="Per-lane latency under contention (40 req/s)",
    )
    emit(results_dir, "service_lanes", text)
