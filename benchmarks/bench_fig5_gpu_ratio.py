"""Fig. 5: task ratio on GPUs vs maximum queue length (1-4 GPUs).

Paper: even at maxlen 2 more than 95% of tasks run on GPUs, rising to
100% by maxlen 12-14; curves with more GPUs sit uniformly higher.
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_series
from repro.core.hybrid import HybridConfig, HybridRunner

MAXLENS = (2, 4, 6, 8, 10, 12, 14)
PAPER = {
    1: dict(zip(MAXLENS, (95.57, 97.25, 98.12, 98.78, 98.93, 99.40, 99.54))),
    2: dict(zip(MAXLENS, (97.47, 99.00, 99.25, 99.76, 99.90, 100.0, 100.0))),
    3: dict(zip(MAXLENS, (98.88, 99.68, 99.90, 99.95, 100.0, 100.0, 100.0))),
    4: dict(zip(MAXLENS, (99.22, 99.85, 100.0, 100.0, 100.0, 100.0, 100.0))),
}


def test_fig5_gpu_task_ratio(benchmark, ion_tasks, results_dir):
    def sweep():
        out = {}
        for g in (1, 2, 3, 4):
            out[g] = {}
            for m in MAXLENS:
                res = HybridRunner(
                    HybridConfig(n_gpus=g, max_queue_length=m)
                ).run(ion_tasks)
                out[g][m] = res.metrics.gpu_task_ratio() * 100.0
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    series = {}
    for g in (1, 2, 3, 4):
        series[f"{g} GPU paper %"] = PAPER[g]
        series[f"{g} GPU measured %"] = measured[g]
    emit(
        results_dir,
        "fig5_gpu_ratio",
        format_series("maxlen", series, title="Fig. 5 — tasks achieved by GPUs (%)"),
    )

    for g in (1, 2, 3, 4):
        r = measured[g]
        # High everywhere, monotone-ish, saturating at ~100%.
        assert r[2] > 85.0
        assert r[14] > 99.0
        assert r[14] >= r[6] >= r[2] - 0.5
    # More GPUs -> higher ratio at the tight bound.
    assert measured[4][2] > measured[1][2]
    assert measured[4][14] == pytest.approx(100.0, abs=0.3)
