"""Fig. 8: distribution of relative numerical error — real numerics.

Paper: relative errors between the serial and hybrid spectra range from
-0.0003% to +0.0033%, with more than 99% inside [0%, 0.0005%].  Our
Simpson-64 kernel against the QAGS reference lands well inside that
envelope (the substitution note in DESIGN.md explains why our errors are
smaller: bins are integrated from each level's edge, eliminating the
dominant edge-bin error of a fixed-grid kernel).
"""

import numpy as np
from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import small_real_database, small_real_grid
from repro.physics.apec import GridPoint, SerialAPEC


def test_fig8_error_distribution(benchmark, results_dir):
    db = small_real_database()
    grid = small_real_grid(n_bins=200)
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)

    reference = SerialAPEC(db, grid, method="qags").compute(point)

    def errors():
        gpu = SerialAPEC(db, grid, method="simpson-batch").compute(point)
        err = gpu.relative_error_percent(reference)
        return err[np.isfinite(err)]

    err = benchmark(errors)

    # Histogram in the paper's units (percent).
    edges = np.array([-np.inf, -3e-4, 0.0, 5e-4, 1e-3, 3.3e-3, np.inf])
    labels = [
        "< -0.0003%",
        "-0.0003%..0%",
        "0%..0.0005%",
        "0.0005%..0.001%",
        "0.001%..0.0033%",
        "> 0.0033%",
    ]
    counts, _ = np.histogram(err, bins=edges)
    rows = [
        [labels[i], int(counts[i]), f"{counts[i] / err.size * 100:.2f}%"]
        for i in range(len(labels))
    ]
    rows.append(["min / max (%)", f"{err.min():.2e}", f"{err.max():.2e}"])
    emit(
        results_dir,
        "fig8_error_distribution",
        format_table(
            ["relative error bin", "bins", "probability"],
            rows,
            title="Fig. 8 — relative error distribution, hybrid vs serial",
        ),
    )

    # Paper envelope: everything within [-0.0003%, 0.0033%].
    assert err.min() > -3.0e-4
    assert err.max() < 3.3e-3
    # ">99% of errors in 0%..0.0005%" — ours must satisfy the same bound.
    frac_tight = np.mean((err >= -1e-12) & (err <= 5.0e-4))
    assert frac_tight > 0.99
