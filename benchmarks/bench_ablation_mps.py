"""Ablation: shared-memory scheduling vs an MPS-like client-server.

Section II-B / V: "the client-server architecture will introduce much
extra overhead if each task is fast and scheduling is quite frequent like
in the spectral calculation"; the shared-memory design exists to avoid
it.  We charge a per-request RPC latency to every alloc and free and
sweep it: at ~0 the two designs coincide; at sub-millisecond latencies
the client-server variant already loses percent-level makespan, and the
loss grows linearly with latency.
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.core.hybrid import HybridConfig, HybridRunner

LATENCIES = (0.0, 2.0e-4, 1.0e-3, 5.0e-3)


def test_ablation_shared_memory_vs_client_server(
    benchmark, ion_tasks, results_dir
):
    def sweep():
        shared = HybridRunner(
            HybridConfig(n_gpus=3, max_queue_length=12)
        ).run(ion_tasks).makespan_s
        served = {}
        for lat in LATENCIES:
            cfg = HybridConfig(
                n_gpus=3,
                max_queue_length=12,
                scheduler_kind="client-server",
                rpc_latency_s=lat,
            )
            served[lat] = HybridRunner(cfg).run(ion_tasks).makespan_s
        return shared, served

    shared, served = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [["shared memory", "-", f"{shared:.1f}", "-"]]
    for lat in LATENCIES:
        overhead = (served[lat] / shared - 1.0) * 100.0
        rows.append(
            ["client-server", f"{lat * 1e6:.0f} us", f"{served[lat]:.1f}", f"{overhead:+.1f}%"]
        )
    emit(
        results_dir,
        "ablation_mps",
        format_table(
            ["scheduler", "RPC latency", "time (s)", "overhead"],
            rows,
            title="Ablation — scheduler transport (3 GPUs, maxlen 12)",
        ),
    )

    # Zero-latency client-server == shared memory (same policy).
    assert served[0.0] == pytest.approx(shared, rel=1e-6)
    # Overhead grows monotonically with RPC latency.
    assert served[2.0e-4] <= served[1.0e-3] <= served[5.0e-3]
    # At 5 ms round trips the penalty is unmistakable.
    assert served[5.0e-3] > shared * 1.02
