"""Micro-benchmarks of the *real* numerical kernels on this machine.

These are live pytest-benchmark timings (not simulation): the vectorized
batch Simpson/Romberg kernels that play the GPU role, the scalar QAGS
that plays the CPU role, and the fused per-ion kernel.  The measured
vectorized/scalar throughput ratio on the host is the reproduction's
analogue of the paper's GPU/CPU per-task ratio and is reported alongside.
"""

import numpy as np
import pytest

from conftest import emit

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.bench.reporting import format_table
from repro.core.calibration import measure_live_eval_rates
from repro.physics.apec import GridPoint, ion_emissivity_batched
from repro.physics.spectrum import EnergyGrid
from repro.quadrature.batch import batch_romberg, batch_simpson
from repro.quadrature.qags import qags


def _edge_exp(x):
    return np.where(x >= 0.5, np.exp(-(x - 0.5) / 0.8), 0.0)


@pytest.fixture(scope="module")
def bins():
    edges = np.linspace(0.3, 3.0, 2001)
    return edges[:-1], edges[1:]


def test_batch_simpson_kernel(benchmark, bins):
    lo, hi = bins
    result = benchmark(batch_simpson, _edge_exp, lo, hi, 64)
    assert result.shape == lo.shape


def test_batch_romberg_kernel(benchmark, bins):
    lo, hi = bins
    result = benchmark(batch_romberg, _edge_exp, lo, hi, 7)
    assert result.shape == lo.shape


def test_scalar_qags_per_bin(benchmark, bins):
    lo, hi = bins

    def fifty_bins():
        return [qags(_edge_exp, float(a), float(b)).value for a, b in zip(lo[:50], hi[:50])]

    out = benchmark(fifty_bins)
    assert len(out) == 50


def test_fused_ion_kernel(benchmark):
    db = AtomicDatabase(AtomicConfig.tiny())
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 500)
    point = GridPoint(temperature_k=1e7, ne_cm3=1.0)
    ion = db.ions[-1]  # O+8, largest ladder in the tiny database
    out = benchmark(ion_emissivity_batched, db, ion, point, grid)
    assert out.shape == (500,)


def test_vectorized_vs_scalar_ratio(benchmark, results_dir):
    """The live 'GPU advantage' of this host's vectorized kernels."""
    rates = benchmark.pedantic(
        measure_live_eval_rates, args=(_edge_exp,), rounds=1, iterations=1
    )
    ratio = rates["vectorized_evals_per_s"] / rates["scalar_evals_per_s"]
    emit(
        results_dir,
        "kernels_micro",
        format_table(
            ["path", "evals/s"],
            [
                ["vectorized batch (GPU role)", f"{rates['vectorized_evals_per_s']:.3e}"],
                ["scalar loop (CPU role)", f"{rates['scalar_evals_per_s']:.3e}"],
                ["ratio", f"{ratio:.0f}x"],
            ],
            title="Live kernel micro-benchmark on this host",
        ),
    )
    assert ratio > 10.0
