"""Fig. 7: normalized flux, serial APEC vs hybrid — real numerics.

The paper plots the 10-45 Angstrom spectrum computed by the original
serial APEC (7a) and by the hybrid CPU/GPU version (7b); the two are
visually identical.  Here the serial reference runs per-bin QAGS and the
"GPU" side runs the batched Simpson-64 kernel; the bench prints both
normalized spectra side by side and asserts they coincide.
"""

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import small_real_database, small_real_grid
from repro.physics.apec import GridPoint, SerialAPEC


def test_fig7_spectra_agree(benchmark, results_dir):
    db = small_real_database()
    grid = small_real_grid(n_bins=200)
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    ions = db.ions  # all 105 ions of the small real database

    reference = SerialAPEC(db, grid, method="qags").compute(point, ions=ions)

    def hybrid_side():
        return SerialAPEC(db, grid, method="simpson-batch").compute(
            point, ions=ions
        )

    gpu = benchmark(hybrid_side)

    ref_n = reference.normalized()
    gpu_n = gpu.normalized()
    wl = grid.wavelength_centers
    # Print a decimated flux table (the "figure").
    step = max(1, grid.n_bins // 20)
    rows = [
        [f"{wl[i]:.2f}", f"{ref_n.values[i]:.6f}", f"{gpu_n.values[i]:.6f}"]
        for i in range(0, grid.n_bins, step)
    ]
    emit(
        results_dir,
        "fig7_spectrum",
        format_table(
            ["wavelength (A)", "serial flux", "hybrid flux"],
            rows,
            title="Fig. 7 — normalized RRC flux, serial vs hybrid (10-45 A, T=1e7 K)",
        ),
    )

    assert np.allclose(ref_n.values, gpu_n.values, atol=1e-8)
    assert ref_n.values.max() == pytest.approx(1.0)
    # The spectrum must actually have structure (recombination edges).
    diffs = np.abs(np.diff(ref_n.values))
    assert diffs.max() > 0.01
