"""Ablation: the history-count tie-break of Algorithm 1.

"If there are two or above GPUs with the same load, the GPU with the
minimum history task count will be chosen."  Against a positional
first-fit tie-break, the history rule equalizes per-device task counts;
makespans barely move (the load bound does the heavy lifting), which is
itself worth documenting.
"""

import numpy as np
from conftest import emit

from repro.bench.reporting import format_table
from repro.core.hybrid import HybridConfig, HybridRunner


def test_ablation_history_tiebreak(benchmark, ion_tasks, results_dir):
    def sweep():
        out = {}
        for rule in ("history", "first"):
            res = HybridRunner(
                HybridConfig(n_gpus=4, max_queue_length=12, tie_break=rule)
            ).run(ion_tasks)
            out[rule] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    imbalance = {}
    for rule, res in results.items():
        counts = res.metrics.gpu_tasks
        imbalance[rule] = int(counts.max() - counts.min())
        rows.append(
            [
                rule,
                f"{res.makespan_s:.1f}",
                " ".join(str(int(c)) for c in counts),
                imbalance[rule],
            ]
        )
    emit(
        results_dir,
        "ablation_tiebreak",
        format_table(
            ["tie-break", "time (s)", "tasks per GPU", "max-min"],
            rows,
            title="Ablation — Algorithm 1 tie-breaking rule (4 GPUs)",
        ),
    )

    # The history rule must not distribute worse than first-fit.
    assert imbalance["history"] <= imbalance["first"]
    # And costs essentially nothing in makespan.
    assert results["history"].makespan_s <= results["first"].makespan_s * 1.05
    # Both runs completed everything.
    for res in results.values():
        assert res.metrics.total_tasks == len(ion_tasks)
    assert np.all(results["history"].metrics.gpu_tasks > 0)
