"""Section IV baselines: serial grid-point time and the 13.5x MPI speedup.

Paper anchors: ~0.5 million CPU hours for a 128^3 space (i.e. ~1.4 ks per
point on the reconciled scale), integrals > 90% of serial runtime, and
"The MPI parallel version with 24 cores can only speed up the computation
by a factor of 13.5 relative to the original serial version."
"""

from conftest import emit

from repro.bench.reporting import paper_vs_measured
from repro.core.hybrid import HybridRunner


def test_baseline_serial_and_mpi(benchmark, ion_tasks, serial_seconds, results_dir):
    runner = HybridRunner()
    mpi = benchmark(runner.run_mpi_only, ion_tasks)

    serial_point = serial_seconds / 24.0
    mpi_speedup = serial_seconds / mpi.makespan_s
    table = paper_vs_measured(
        "Baselines (simulated seconds)",
        paper={"serial s/point": 1437.0, "24-core MPI speedup": 13.5},
        measured={
            "serial s/point": serial_point,
            "24-core MPI speedup": mpi_speedup,
        },
    )
    emit(results_dir, "baseline_mpi", table)

    assert 1200.0 < serial_point < 1700.0
    assert abs(mpi_speedup - 13.5) / 13.5 < 0.05
