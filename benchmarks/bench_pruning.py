"""Active-window pruning: wall-clock and simulated-device speedup sweep.

Sweeps the relative tail tolerance over {0 (off), 1e-6, 1e-9, 1e-12} on
the Fig. 7 workload (T = 1e7 K, 10-45 Angstrom) and reports, per setting:

- real wall-clock time of the batched Simpson hot path and its speedup
  over the unpruned kernel,
- the simulated Tesla C2075's service time for the same task set, priced
  from the *active* integral counts (`KernelSpec.for_ion_task`),
- integrand evaluations saved (the pruning ledger), and
- the max per-bin relative error against the unpruned reference.

Two structural effects produce the win: window pruning skips the
(level, bin) pairs whose contribution fits inside the tail budget, and
the shared-abscissa fast path computes ``exp(-x/kT)`` (and the Gaunt
``cbrt``) once per ion instead of once per level.

Set ``REPRO_BENCH_SMOKE=1`` to run a tiny configuration (few ions,
200 bins) without the speedup floor — the CI smoke mode.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import small_real_database, small_real_grid
from repro.constants import K_B_KEV
from repro.gpusim.device import TESLA_C2075
from repro.gpusim.kernel import KernelSpec
from repro.physics.apec import GridPoint, ion_emissivity_batched
from repro.physics.windows import level_windows

TAIL_TOLS = (0.0, 1.0e-6, 1.0e-9, 1.0e-12)
SIMPSON_PIECES = 64
SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))


def _workload():
    db = small_real_database()
    grid = small_real_grid(n_bins=200)
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    ions = [ion for ion in db.ions if db.n_levels(ion) > 0]
    if SMOKE:
        # A deterministic spread across the charge ladder — the high-Z
        # ions keep some prunable (above-grid) edges in the tiny config.
        ions = ions[:: max(1, len(ions) // 8)][:8]
    return db, grid, point, ions


def _spectrum(db, grid, point, ions, tail_tol):
    out = np.zeros(grid.n_bins)
    for ion in ions:
        out += ion_emissivity_batched(
            db, ion, point, grid, pieces=SIMPSON_PIECES, tail_tol=tail_tol
        )
    return out


def _wall_seconds(db, grid, point, ions, tail_tol, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _spectrum(db, grid, point, ions, tail_tol)
        best = min(best, time.perf_counter() - t0)
    return best


def _device_tasks(db, grid, point, ions, tail_tol):
    """The same workload priced for the simulated GPU."""
    kt = K_B_KEV * point.temperature_k
    specs = []
    for ion in ions:
        n_levels = db.n_levels(ion)
        n_active = None
        if tail_tol > 0.0:
            win = level_windows(
                db.levels(ion).energy_kev, grid, kt, tail_tol
            )
            n_active = win.n_active
        specs.append(
            KernelSpec.for_ion_task(
                n_levels=n_levels,
                n_bins=grid.n_bins,
                evals_per_integral=SIMPSON_PIECES + 1,
                label=ion.name,
                n_active=n_active,
            )
        )
    return specs


def test_pruning_speedup_sweep(results_dir):
    db, grid, point, ions = _workload()
    repeats = 1 if SMOKE else 3

    # Warm caches (weights, node vectors, numpy paths) off the clock.
    _spectrum(db, grid, point, ions, 1.0e-6)
    reference = _spectrum(db, grid, point, ions, 0.0)
    ref_nonzero = np.abs(reference) > 0.0
    assert ref_nonzero.any()

    base_wall = _wall_seconds(db, grid, point, ions, 0.0, repeats)
    base_specs = _device_tasks(db, grid, point, ions, 0.0)
    base_device = sum(TESLA_C2075.service_time(s) for s in base_specs)
    base_compute = sum(TESLA_C2075.compute_time(s) for s in base_specs)
    base_evals = sum(s.total_evals for s in base_specs)

    rows = []
    measured = {}
    for tt in TAIL_TOLS:
        wall = (
            base_wall
            if tt == 0.0
            else _wall_seconds(db, grid, point, ions, tt, repeats)
        )
        specs = _device_tasks(db, grid, point, ions, tt)
        device = sum(TESLA_C2075.service_time(s) for s in specs)
        compute = sum(TESLA_C2075.compute_time(s) for s in specs)
        evals = sum(s.total_evals for s in specs)
        saved = sum(s.evals_saved for s in specs)
        # The ledger must balance: active + saved == the dense workload.
        assert evals + saved == base_evals

        values = reference if tt == 0.0 else _spectrum(db, grid, point, ions, tt)
        if tt == 0.0:
            max_rel = 0.0
            assert np.array_equal(values, reference)  # bit-for-bit off-switch
        else:
            max_rel = float(
                np.max(
                    np.abs(values - reference)[ref_nonzero]
                    / np.abs(reference)[ref_nonzero]
                )
            )
        measured[tt] = {
            "wall": wall,
            "device": device,
            "compute": compute,
            "evals": evals,
            "saved": saved,
            "max_rel": max_rel,
        }
        rows.append(
            [
                f"{tt:.0e}" if tt else "off",
                f"{wall * 1e3:.1f}",
                f"{base_wall / wall:.2f}x",
                f"{device * 1e3:.2f}",
                f"{compute * 1e3:.2f}",
                f"{base_compute / compute:.3f}x",
                f"{saved:,}",
                f"{max_rel:.2e}",
            ]
        )

    emit(
        results_dir,
        "pruning",
        format_table(
            [
                "tail_tol",
                "wall (ms)",
                "wall speedup",
                "sim C2075 (ms)",
                "sim compute (ms)",
                "compute speedup",
                "evals saved",
                "max rel err",
            ],
            rows,
            title=(
                "Active-window pruning - batched Simpson-64, "
                f"{len(ions)} ions x 200 bins, T=1e7 K (10-45 A)"
            ),
        ),
    )

    for tt in TAIL_TOLS[1:]:
        m = measured[tt]
        # Accuracy: the budget holds with orders of magnitude to spare.
        assert m["max_rel"] <= tt
        # The simulated ledger shrinks consistently with the savings:
        # compute time is linear in total_evals, so the ratios match.
        assert m["saved"] > 0
        assert m["device"] < base_device
        assert base_compute / m["compute"] == pytest.approx(
            base_evals / m["evals"], rel=1e-12
        )
    # Looser budgets can only save more.
    assert (
        measured[1e-6]["saved"]
        >= measured[1e-9]["saved"]
        >= measured[1e-12]["saved"]
    )
    if not SMOKE:
        # Headline: >= 5x wall-clock at the 1e-9 budget.
        assert base_wall / measured[1e-9]["wall"] >= 5.0
