"""Multi-node scaling — the outer tier of Fig. 2.

The paper's cluster design: equal point sub-spaces per node, fully
independent local schedulers, no runtime communication.  Predictions this
bench verifies on a 96-point space (4 points per rank on one node):

- node scaling tracks the points-per-rank quantization: 96 points over
  24-rank nodes gives ceil(points_per_node / 24) rounds of work, so
  2 nodes -> 2x, 4 nodes -> 4x, but 3 nodes *plateaus at 2x* (32 points
  per node still means two rounds for some ranks);
- once every rank holds at most one point (>= 4 nodes), adding nodes
  stops helping — same saturation logic as Fig. 3's GPUs, one tier up.
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import paper_workload
from repro.core.hybrid import HybridConfig
from repro.core.multinode import MultiNodeConfig, MultiNodeRunner


def test_multinode_scaling(benchmark, results_dir):
    tasks = paper_workload(n_points=96)
    node_cfg = HybridConfig(n_gpus=2, max_queue_length=12)

    def sweep():
        out = {}
        for n in (1, 2, 3, 4, 6):
            runner = MultiNodeRunner(MultiNodeConfig(n_nodes=n, node=node_cfg))
            out[n] = runner.run(tasks)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results[1].makespan_s
    rows = []
    for n, res in results.items():
        points_per_node = -(-96 // n)
        rounds = -(-points_per_node // 24)
        rows.append(
            [
                n,
                points_per_node,
                rounds,
                f"{res.makespan_s:.1f}",
                f"{base / res.makespan_s:.2f}x",
                f"{res.comm_s:.2f} s",
            ]
        )
    emit(
        results_dir,
        "multinode",
        format_table(
            ["nodes", "points/node", "rounds/rank", "time (s)", "scaling", "comm"],
            rows,
            title="Multi-node scaling (96 points; 24 ranks + 2 GPUs per node)",
        ),
    )

    # Quantized scaling: 2 nodes -> ~2x, 4 nodes -> ~4x.
    assert base / results[2].makespan_s == pytest.approx(2.0, rel=0.10)
    assert base / results[4].makespan_s == pytest.approx(4.0, rel=0.12)
    # The 3-node plateau: 32 points/node still needs two rounds per rank.
    assert base / results[3].makespan_s == pytest.approx(
        base / results[2].makespan_s, rel=0.10
    )
    # Beyond one point per rank, extra nodes stop paying.
    assert results[6].makespan_s == pytest.approx(
        results[4].makespan_s, rel=0.10
    )
