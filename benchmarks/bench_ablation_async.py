"""Ablation: the paper's future-work asynchronous task queuing.

Section V: "when the single task is time-consuming to GPU, some
asynchronous task queuing mechanism must be introduced to keep CPUs busy
and reduce the waiting time."  We implement bounded-depth asynchronous
submission and measure where it pays:

- tight queue bound (GPU starves between synchronous submissions):
  async feeding recovers throughput;
- deep queue bound: async *hurts* slightly — one rank holding several
  slots displaces other ranks to CPU fallbacks;
- heavy Romberg tasks (the paper's stated motivation): waiting dominates,
  async keeps the CPUs productive.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import romberg_workload
from repro.core.hybrid import HybridConfig, HybridRunner


def _run(tasks, depth, maxlen, n_gpus=1):
    cfg = HybridConfig(n_gpus=n_gpus, max_queue_length=maxlen, async_depth=depth)
    return HybridRunner(cfg).run(tasks).makespan_s


def test_ablation_async_submission(benchmark, ion_tasks, results_dir):
    heavy_tasks = romberg_workload(k=11)

    def sweep():
        return {
            ("simpson", 2, "sync"): _run(ion_tasks, 0, 2),
            ("simpson", 2, "async4"): _run(ion_tasks, 4, 2),
            ("simpson", 12, "sync"): _run(ion_tasks, 0, 12),
            ("simpson", 12, "async4"): _run(ion_tasks, 4, 12),
            ("romberg11", 6, "sync"): _run(heavy_tasks, 0, 6, n_gpus=2),
            ("romberg11", 6, "async4"): _run(heavy_tasks, 4, 6, n_gpus=2),
        }

    t = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [w, m, mode, f"{t[(w, m, mode)]:.1f}"]
        for (w, m, mode) in sorted(t)
    ]
    emit(
        results_dir,
        "ablation_async",
        format_table(
            ["workload", "maxlen", "mode", "time (s)"],
            rows,
            title="Ablation — synchronous vs asynchronous submission",
        ),
    )

    # Starved short queue: async recovers GPU utilization.
    assert t[("simpson", 2, "async4")] < t[("simpson", 2, "sync")]
    # Deep queue: bounded regression only.
    assert t[("simpson", 12, "async4")] <= t[("simpson", 12, "sync")] * 1.15
    # Heavy tasks: async must not lose (the paper's motivation case).
    assert t[("romberg11", 6, "async4")] <= t[("romberg11", 6, "sync")] * 1.05
