"""Table II: NEI speedup on 1-4 GPUs vs the 24-core pure-MPI version.

Paper row (maxlen 8): speedups 2.8 / 5.9 / 10.8 / 15.1
                      times    3137 / 1494 / 810 / 582 s.

Reproduction criterion: monotone, near-linear scaling through 4 GPUs —
the contrast with Fig. 3's saturation after 2-3 GPUs is the point of the
adaptability study (NEI tasks are heavy enough to keep 4 GPUs busy).
The paper's top-end superlinearity (15.1 > 4 x 2.8/1) is not reachable in
a work-conserving deterministic model; EXPERIMENTS.md discusses the gap.
"""

import pytest
from conftest import emit

from repro.bench.reporting import paper_vs_measured
from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks

PAPER_SPEEDUP = {1: 2.8, 2: 5.9, 3: 10.8, 4: 15.1}


def test_table2_nei_speedup(benchmark, results_dir):
    cost = CostModel(point_overhead_s=0.0)  # NEI has no per-point I/O lump
    tasks = build_nei_tasks(NEIWorkloadSpec())
    mpi = HybridRunner(
        HybridConfig(n_gpus=0, max_queue_length=8, cost=cost)
    ).run_mpi_only(tasks)

    def sweep():
        out = {}
        for g in (1, 2, 3, 4):
            res = HybridRunner(
                HybridConfig(n_gpus=g, max_queue_length=8, cost=cost)
            ).run(tasks)
            out[g] = mpi.makespan_s / res.makespan_s
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        results_dir,
        "table2_nei",
        paper_vs_measured(
            "Table II — NEI speedup vs 24-core MPI (maxlen 8)",
            PAPER_SPEEDUP,
            speedups,
        ),
    )

    assert speedups[1] < speedups[2] < speedups[3] < speedups[4]
    # Near-linear: each added GPU keeps paying (>15% at the 4th).
    assert speedups[4] / speedups[3] > 1.15
    assert speedups[1] == pytest.approx(PAPER_SPEEDUP[1], rel=0.30)
    assert speedups[4] == pytest.approx(PAPER_SPEEDUP[4], rel=0.35)
