"""Tracer overhead on the paper workload: off must be free, on cheap.

The observability layer promises that an uninstrumented run pays only a
disabled-flag check per emission site.  This bench quantifies that on
the Fig. 7-scale hybrid workload (24 points x 496 Ion tasks):

- *tracer off* — the default :data:`~repro.obs.tracer.NULL_TRACER`;
  every instrumentation site reduces to one attribute read.
- *tracer on* — a recording :class:`~repro.obs.EventTracer`; the full
  span stream (task, kernel, scheduler, counter events) is captured.

The no-op assertion is made in absolute terms: the measured per-site
guard cost times the number of sites a traced run actually visits must
stay under 2% of the untraced wall time.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bench.reporting import format_table
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.obs import NULL_TRACER, EventTracer


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_overhead(ion_tasks, results_dir):
    cfg = HybridConfig(n_gpus=2, max_queue_length=8)

    t_off = _best_of(lambda: HybridRunner(cfg).run(ion_tasks))

    event_counts: list[int] = []

    def traced_run():
        tracer = EventTracer()
        HybridRunner(cfg, tracer=tracer).run(ion_tasks)
        event_counts.append(len(tracer.events))

    t_on = _best_of(traced_run)
    n_events = event_counts[-1]

    # Per-site cost of the disabled guard (`if tracer.enabled: ...`).
    n_probe = 1_000_000
    null = NULL_TRACER
    t0 = time.perf_counter()
    for _ in range(n_probe):
        if null.enabled:
            raise AssertionError("unreachable")
    guard_s = (time.perf_counter() - t0) / n_probe

    # Every event a traced run emits corresponds to (at least) one
    # guarded site the untraced run crossed; price them all.
    noop_cost_s = guard_s * n_events
    noop_frac = noop_cost_s / t_off
    on_overhead = t_on / t_off - 1.0

    emit(
        results_dir,
        "obs_overhead",
        format_table(
            ["quantity", "value"],
            [
                ["workload", f"{len(ion_tasks)} Ion tasks, 2 GPUs, maxlen 8"],
                ["wall time, tracer off (s)", f"{t_off:.3f}"],
                ["wall time, tracer on (s)", f"{t_on:.3f}"],
                ["tracing-on overhead", f"{on_overhead:+.1%}"],
                ["events recorded (on)", n_events],
                ["disabled-guard cost (ns/site)", f"{guard_s * 1e9:.1f}"],
                ["no-op cost, all sites (ms)", f"{noop_cost_s * 1e3:.3f}"],
                ["no-op overhead vs run", f"{noop_frac:.4%}"],
            ],
            title="Observability overhead — hybrid paper workload",
        ),
    )

    # The headline guarantee: tracing *off* costs < 2% of the run.
    assert noop_frac < 0.02
    # Sanity: the traced run actually recorded the stream.
    assert n_events > len(ion_tasks)


def test_attribution_off_overhead(results_dir):
    """Attribution off must be free: no ledger, no model, guard-only cost.

    With tracing off the broker never constructs an
    :class:`~repro.obs.attribution.Attribution` or cost model — the only
    residue on the hot path is one ``is not None`` check per batch
    completion (plus the trace-id plumbing riding fields that already
    exist).  As above, the assertion is absolute: the measured guard
    cost times the number of sites an untraced serve run crosses must
    stay under 2% of its wall time.
    """
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    trace = generate_trace(TrafficSpec(n_requests=60, seed=7))
    cfg = ServiceConfig(n_service_workers=2)

    t_off = _best_of(lambda: run_trace(trace, cfg))
    broker, _ = run_trace(trace, cfg)
    assert broker.attribution is None
    assert broker.cost_model is None
    report = broker.report()

    def attributed_run():
        tracer = EventTracer()
        b, _ = run_trace(trace, cfg, tracer=tracer)
        b.cost_report()

    t_on = _best_of(attributed_run)

    # Per-site cost of the disabled guard (`if attribution is not None`).
    n_probe = 1_000_000
    attribution = None
    t0 = time.perf_counter()
    for _ in range(n_probe):
        if attribution is not None:
            raise AssertionError("unreachable")
    guard_s = (time.perf_counter() - t0) / n_probe

    # One guard per batch completion plus one per request completion
    # (the trace-id pass-through on the telemetry path).
    n_sites = report["batches"] + report["completions"]
    noop_cost_s = guard_s * n_sites
    noop_frac = noop_cost_s / t_off
    on_overhead = t_on / t_off - 1.0

    emit(
        results_dir,
        "attribution_overhead",
        format_table(
            ["quantity", "value"],
            [
                ["workload", "60-request zipf trace, 2 workers"],
                ["wall time, attribution off (s)", f"{t_off:.3f}"],
                ["wall time, attribution on (s)", f"{t_on:.3f}"],
                ["attribution-on overhead", f"{on_overhead:+.1%}"],
                ["guarded sites crossed", n_sites],
                ["disabled-guard cost (ns/site)", f"{guard_s * 1e9:.1f}"],
                ["no-op cost, all sites (ms)", f"{noop_cost_s * 1e3:.3f}"],
                ["no-op overhead vs run", f"{noop_frac:.4%}"],
            ],
            title="Attribution overhead — service stack",
        ),
    )

    # The headline guarantee: attribution *off* costs < 2% of the run.
    assert noop_frac < 0.02


def test_tsdb_off_overhead(results_dir):
    """Telemetry off must be free, and the scrape cadence must price out.

    With no store attached the broker holds :data:`~repro.obs.tsdb.NULL_TSDB`
    and each batch completion pays exactly one ``tsdb.enabled`` attribute
    read.  The absolute guard argument again: that cost times the number
    of batch completions must stay under 2% of the unscraped wall time.
    The second half of the table is the cadence cost curve — the same
    trace scraped at coarser-to-finer cadences — so the marginal price
    of higher-resolution telemetry is a recorded number, not a guess.
    """
    from repro.obs.tsdb import NULL_TSDB, TimeSeriesStore
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    trace = generate_trace(TrafficSpec(n_requests=60, seed=7))
    cfg = ServiceConfig(n_service_workers=2)

    t_off = _best_of(lambda: run_trace(trace, cfg))
    broker, _ = run_trace(trace, cfg)
    assert broker.tsdb is NULL_TSDB
    report = broker.report()

    # Per-site cost of the disabled guard (`if tsdb.enabled: ...`).
    n_probe = 1_000_000
    null = NULL_TSDB
    t0 = time.perf_counter()
    for _ in range(n_probe):
        if null.enabled:
            raise AssertionError("unreachable")
    guard_s = (time.perf_counter() - t0) / n_probe

    n_sites = report["batches"]
    noop_cost_s = guard_s * n_sites
    noop_frac = noop_cost_s / t_off

    rows = [
        ["workload", "60-request zipf trace, 2 workers"],
        ["wall time, telemetry off (s)", f"{t_off:.3f}"],
        ["guarded sites crossed", n_sites],
        ["disabled-guard cost (ns/site)", f"{guard_s * 1e9:.1f}"],
        ["no-op cost, all sites (ms)", f"{noop_cost_s * 1e3:.3f}"],
        ["no-op overhead vs run", f"{noop_frac:.4%}"],
    ]

    # Cadence cost curve: the same trace at coarser-to-finer scrape
    # cadences.  Scraping is pure observation, so only the wall time
    # moves; the virtual-time report stays bit-identical.
    scrape_counts: list[int] = []
    for cadence_s in (2.0, 1.0, 0.5, 0.25, 0.1):
        last: list[TimeSeriesStore] = []

        def scraped_run():
            store = TimeSeriesStore(cadence_s=cadence_s)
            run_trace(trace, cfg, tsdb=store)
            last.append(store)

        t_on = _best_of(scraped_run)
        store = last[-1]
        scrape_counts.append(store.n_scrapes)
        rows.append(
            [
                f"cadence {cadence_s:g}s",
                f"{t_on:.3f}s ({t_on / t_off - 1.0:+.1%}), "
                f"{store.n_scrapes} scrapes, {store.n_samples} samples",
            ]
        )

    emit(
        results_dir,
        "tsdb_overhead",
        format_table(
            ["quantity", "value"],
            rows,
            title="Telemetry (TSDB) overhead — service stack",
        ),
    )

    # The headline guarantee: telemetry *off* costs < 2% of the run.
    assert noop_frac < 0.02
    # Finer cadence must never scrape less.
    assert all(a <= b for a, b in zip(scrape_counts, scrape_counts[1:]))
