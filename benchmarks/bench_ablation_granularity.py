"""Ablation: the third granularity (Element) the paper discusses in text.

Section III-B: "the optimum granularity is ion, because if element is
used (one element includes several ions), the logic of the kernel will
become more complex so that it is not suitable to run on GPU."  The
element kernel's branch divergence is modelled as an efficiency factor;
this bench quantifies the resulting end-to-end ordering Level < Element
< Ion ... or wherever the host/device tradeoff lands it.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import paper_level_workload
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner


def test_ablation_granularity_ordering(
    benchmark, ion_tasks, serial_seconds, results_dir
):
    level_tasks = paper_level_workload()
    element_tasks = build_tasks(WorkloadSpec(granularity=Granularity.ELEMENT))

    def sweep():
        out = {}
        for name, tasks in (
            ("ion", ion_tasks),
            ("level", level_tasks),
            ("element", element_tasks),
        ):
            res = HybridRunner(
                HybridConfig(n_gpus=3, max_queue_length=12)
            ).run(tasks)
            out[name] = serial_seconds / res.makespan_s
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[name, f"{speedups[name]:.1f}"] for name in ("level", "ion", "element")]
    emit(
        results_dir,
        "ablation_granularity",
        format_table(
            ["granularity", "speedup over serial (3 GPUs)"],
            rows,
            title="Ablation — task granularity (Section III-B)",
        ),
    )

    # Ion is the optimum; both alternatives lose.
    assert speedups["ion"] > speedups["level"]
    assert speedups["ion"] > speedups["element"]
