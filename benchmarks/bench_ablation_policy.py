"""Ablation: Algorithm 1's min-load policy vs random placement, and the
scheduler's behaviour on a heterogeneous GPU fleet.

Two experiments probing the boundaries of the paper's design:

1. *Min-load vs random.*  "The scheduler will select a GPU that has the
   minimum work load currently."  Against a random-placement baseline
   (same admission bound, unmanaged choice), min-load wins makespan when
   queues matter and keeps waits shorter.

2. *Heterogeneous fleet.*  "This strategy is simple but very efficient
   when the size of all tasks is approximately equivalent."  The dual
   caveat: it also assumes the *devices* are equivalent.  Pairing a C2075
   with a slower C2075 shows min-load, which is blind to device speed,
   queueing equal task counts on unequal devices.  The bench quantifies
   the gap against a fleet of two full-speed cards — and measures the
   recovery from :class:`~repro.core.scheduler.WeightedScheduler`, the
   backlog-time rule implementing the paper's future-work "improved
   scheme for load balancing".
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.gpusim.device import TESLA_C2075


def test_ablation_policy_and_heterogeneity(
    benchmark, ion_tasks, serial_seconds, results_dir
):
    half_speed = TESLA_C2075.with_eval_rate(TESLA_C2075.eval_rate / 2.0)

    def sweep():
        out = {}
        # Policy comparison at a tight bound where placement matters.
        for kind in ("shared", "random"):
            res = HybridRunner(
                HybridConfig(
                    n_gpus=4, max_queue_length=3, scheduler_kind=kind
                )
            ).run(ion_tasks)
            out[("policy", kind)] = res
        # Fleet comparison at the paper's operating point; the mixed
        # fleet is run under both placement rules.
        quarter_speed = TESLA_C2075.with_eval_rate(TESLA_C2075.eval_rate / 4.0)
        for fleet_name, fleet, kind in (
            ("2x full", (TESLA_C2075, TESLA_C2075), "shared"),
            ("full + 1/4 (min-load)", (TESLA_C2075, quarter_speed), "shared"),
            ("full + 1/4 (weighted)", (TESLA_C2075, quarter_speed), "weighted"),
        ):
            res = HybridRunner(
                HybridConfig(
                    n_gpus=2, max_queue_length=4, devices=fleet,
                    scheduler_kind=kind,
                )
            ).run(ion_tasks)
            out[("fleet", fleet_name)] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (group, name), res in results.items():
        rows.append(
            [
                group,
                name,
                f"{res.makespan_s:.1f}",
                f"{res.metrics.mean_wait_s() * 1e3:.1f} ms",
                " ".join(str(int(c)) for c in res.metrics.gpu_tasks),
            ]
        )
    emit(
        results_dir,
        "ablation_policy",
        format_table(
            ["experiment", "variant", "time (s)", "mean wait", "tasks per GPU"],
            rows,
            title="Ablation — placement policy and device heterogeneity",
        ),
    )

    # Min-load at least matches random and waits are no longer.
    t_shared = results[("policy", "shared")].makespan_s
    t_random = results[("policy", "random")].makespan_s
    assert t_shared <= t_random * 1.02
    w_shared = results[("policy", "shared")].metrics.mean_wait_s()
    w_random = results[("policy", "random")].metrics.mean_wait_s()
    assert w_shared <= w_random * 1.05

    # The mixed fleet loses against two full-speed cards...
    t_full = results[("fleet", "2x full")].makespan_s
    t_minload = results[("fleet", "full + 1/4 (min-load)")].makespan_s
    t_weighted = results[("fleet", "full + 1/4 (weighted)")].makespan_s
    assert t_minload > t_full
    # ...and the backlog-time rule recovers part of the gap.
    assert t_weighted < t_minload
    # The weighted rule routes more work to the fast card.
    c_min = results[("fleet", "full + 1/4 (min-load)")].metrics.gpu_tasks
    c_w = results[("fleet", "full + 1/4 (weighted)")].metrics.gpu_tasks
    assert int(c_w[0]) > int(c_min[0])
