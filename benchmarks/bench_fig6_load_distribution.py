"""Fig. 6: load-residency distribution on device 0 vs task complexity.

Romberg workloads with k = 7, 9, 11, 13 on 2 GPUs at maxlen 6.  Paper
reading: at k = 7 the queue mostly sits at low/middle loads; by k = 13
the device spends ~44% of the run pegged at the full load of 6.  Our
deterministic simulation shows the same rightward migration of load mass
(with a harder peg at the bound — the real system's noise spreads it).
"""

import numpy as np
import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.workloads import romberg_workload
from repro.core.hybrid import HybridConfig, HybridRunner

KS = (7, 9, 11, 13)


def test_fig6_load_distribution(benchmark, results_dir):
    def sweep():
        out = {}
        for k in KS:
            tasks = romberg_workload(k)
            res = HybridRunner(
                HybridConfig(n_gpus=2, max_queue_length=6)
            ).run(tasks)
            out[k] = res.metrics.load_distribution_percent(0)
        return out

    dist = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for k in KS:
        rows.append([f"k={k}"] + [f"{v:.2f}" for v in dist[k]])
    text = format_table(
        ["complexity"] + [f"load {i}" for i in range(7)],
        rows,
        title="Fig. 6 — % of run time device 0 spent at each load (2 GPUs, maxlen 6)",
    )
    emit(results_dir, "fig6_load_distribution", text)

    # Load mass migrates right as k grows.
    mean_load = {k: float(np.arange(7) @ dist[k]) / 100.0 for k in KS}
    assert mean_load[7] < mean_load[9] < mean_load[11] <= mean_load[13] + 0.2
    # k = 7: queue rarely pegged; k = 13: dominated by the full bound.
    assert dist[7][6] < 20.0
    assert dist[13][6] > 40.0
    for k in KS:
        assert dist[k].sum() == pytest.approx(100.0, abs=0.1)
